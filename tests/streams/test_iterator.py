"""Unit tests for stream iteration over the Fig. 3 example patterns."""
import numpy as np
import pytest

from repro.common.types import ElementType
from repro.errors import DescriptorError, StreamError
from repro.streams import (
    Descriptor,
    IndirectModifier,
    Level,
    Param,
    StaticModifier,
    StreamIterator,
    StreamPattern,
    VectorChunker,
    indirect,
    linear,
    lower_triangular,
    rectangular,
    repeated,
)
from repro.streams.descriptor import IndirectBehavior, StaticBehavior

W = ElementType.F32.width  # 4 bytes


def elem_addrs(pattern, read_element=None):
    return [a // pattern.etype.width for a in StreamIterator(pattern, read_element).addresses()]


class TestLinear:
    def test_fig3_b1_linear(self):
        # for i in range(N): A[i]
        pattern = linear(base=10, size=5)
        assert elem_addrs(pattern) == [10, 11, 12, 13, 14]

    def test_byte_addresses_scale_by_width(self):
        pattern = linear(base=10, size=2, etype=ElementType.F64)
        assert StreamIterator(pattern).addresses() == [80, 88]

    def test_strided(self):
        pattern = linear(base=0, size=4, stride=3)
        assert elem_addrs(pattern) == [0, 3, 6, 9]

    def test_reverse(self):
        pattern = linear(base=9, size=4, stride=-2)
        assert elem_addrs(pattern) == [9, 7, 5, 3]

    def test_end_flag_only_on_last(self):
        pattern = linear(base=0, size=3)
        flags = [e.dims_ended for e in StreamIterator(pattern).materialize()]
        assert flags == [-1, -1, 0]

    def test_empty(self):
        assert elem_addrs(linear(base=0, size=0)) == []


class TestRectangular:
    def test_fig3_b2_dense_matrix(self):
        # for i in range(Nr): for j in range(Nc): A[i*Nc + j]
        pattern = rectangular(base=100, rows=3, cols=4)
        expect = [100 + i * 4 + j for i in range(3) for j in range(4)]
        assert elem_addrs(pattern) == expect

    def test_fig3_b3_scattered(self):
        # for i in range(0, Nr, 2): for j in range(0, d, 2): A[i*Nc + j]
        nc, nr, d = 8, 4, 6
        pattern = StreamPattern(
            levels=[
                Level(Descriptor(0, d // 2, 2)),
                Level(Descriptor(0, nr // 2, 2 * nc)),
            ]
        )
        expect = [i * nc + j for i in range(0, nr, 2) for j in range(0, d, 2)]
        assert elem_addrs(pattern) == expect

    def test_dim_end_flags(self):
        pattern = rectangular(base=0, rows=2, cols=2)
        flags = [e.dims_ended for e in StreamIterator(pattern).materialize()]
        # end-of-row (dim0) after each row, end-of-stream (dim1) at the last.
        assert flags == [-1, 0, -1, 1]

    def test_submatrix_row_stride(self):
        pattern = rectangular(base=0, rows=2, cols=3, row_stride=10)
        assert elem_addrs(pattern) == [0, 1, 2, 10, 11, 12]


class TestRepeated:
    def test_zero_stride_outer_repeats(self):
        pattern = repeated(linear(base=5, size=3), times=2)
        assert elem_addrs(pattern) == [5, 6, 7, 5, 6, 7]

    def test_flags_promote_to_outer(self):
        pattern = repeated(linear(base=0, size=2), times=2)
        flags = [e.dims_ended for e in StreamIterator(pattern).materialize()]
        assert flags == [-1, 0, -1, 1]


class TestLowerTriangular:
    def test_fig3_b4(self):
        # Row i covers elements A[i*Nc .. i*Nc+i].
        nc, nr = 5, 4
        pattern = lower_triangular(base=0, rows=nr, row_stride=nc)
        expect = [i * nc + j for i in range(nr) for j in range(i + 1)]
        assert elem_addrs(pattern) == expect

    def test_explicit_encoding_matches_paper(self):
        # D0:{&A, 0, 1}; D1:{0, Nr, Nc}; Modifier {Size, Add, 1, Nr}.
        nc, nr = 5, 4
        pattern = StreamPattern(
            levels=[
                Level(Descriptor(0, 0, 1)),
                Level(
                    Descriptor(0, nr, nc),
                    [StaticModifier(Param.SIZE, StaticBehavior.ADD, 1, nr)],
                ),
            ]
        )
        expect = [i * nc + j for i in range(nr) for j in range(i + 1)]
        assert elem_addrs(pattern) == expect

    def test_modifier_resets_on_outer_restart(self):
        # Repeat a triangular scan twice: sizes must restart from 1.
        nc, nr = 4, 3
        pattern = repeated(lower_triangular(base=0, rows=nr, row_stride=nc), 2)
        one = [i * nc + j for i in range(nr) for j in range(i + 1)]
        assert elem_addrs(pattern) == one + one

    def test_growth_two(self):
        pattern = lower_triangular(base=0, rows=3, row_stride=10, growth=2, first_row_size=2)
        expect = [0, 1, 10, 11, 12, 13, 20, 21, 22, 23, 24, 25]
        assert elem_addrs(pattern) == expect

    def test_modifier_count_limits_applications(self):
        # Growth stops after two applications: sizes 1, 2, 2, 2.
        pattern = StreamPattern(
            levels=[
                Level(Descriptor(0, 0, 1)),
                Level(
                    Descriptor(0, 4, 10),
                    [StaticModifier(Param.SIZE, StaticBehavior.ADD, 1, 2)],
                ),
            ]
        )
        sizes = [1, 2, 2, 2]
        expect = [i * 10 + j for i in range(4) for j in range(sizes[i])]
        assert elem_addrs(pattern) == expect

    def test_offset_modifier_diagonal(self):
        # Walk the diagonal: offset grows by Nc+1 per row, one element each.
        nc = 5
        pattern = StreamPattern(
            levels=[
                Level(Descriptor(-(nc + 1), 1, 1)),
                Level(
                    Descriptor(0, 4, 0),
                    [StaticModifier(Param.OFFSET, StaticBehavior.ADD, nc + 1, 4)],
                ),
            ]
        )
        assert elem_addrs(pattern) == [0, 6, 12, 18]


class TestIndirect:
    def _memory_reader(self, table):
        data = np.asarray(table, dtype=np.int32)

        def read(addr_bytes, etype):
            assert etype is ElementType.I32
            return int(data[addr_bytes // etype.width])

        return read

    def test_fig3_b5_gather(self):
        # for i in range(Nc): B[A[i]]
        idx = [3, 0, 2, 7]
        index_pattern = linear(base=0, size=4, etype=ElementType.I32)
        pattern = indirect(base=100, index_pattern=index_pattern)
        reader = self._memory_reader(idx)
        assert elem_addrs(pattern, reader) == [103, 100, 102, 107]

    def test_indirect_row_gather(self):
        # A[B[i]*Nc + j] rows of length 3 selected by an index vector.
        idx = [2, 0]
        nc = 10
        index_pattern = StreamPattern(
            levels=[Level(Descriptor(0, 2, 1))], etype=ElementType.I32
        )
        # Scale the origin values by configuring the row start at base and
        # using set-add of idx*Nc via a pre-scaled index table.
        scaled = [v * nc for v in idx]
        pattern = indirect(base=0, index_pattern=index_pattern, inner_size=3)
        reader = self._memory_reader(scaled)
        assert elem_addrs(pattern, reader) == [20, 21, 22, 0, 1, 2]

    def test_lone_indirect_flags(self):
        idx = [1, 5]
        pattern = indirect(
            base=0, index_pattern=linear(base=0, size=2, etype=ElementType.I32)
        )
        reader = self._memory_reader(idx)
        flags = [e.dims_ended for e in StreamIterator(pattern, reader).materialize()]
        assert flags == [0, 1]

    def test_indirect_requires_reader(self):
        pattern = indirect(
            base=0, index_pattern=linear(base=0, size=2, etype=ElementType.I32)
        )
        with pytest.raises(DescriptorError):
            StreamIterator(pattern)

    def test_paired_indirect_with_descriptor_trip_count(self):
        # Descriptor provides the trip count; origin feeds offsets.
        idx = [4, 9, 1]
        origin = linear(base=0, size=3, etype=ElementType.I32)
        pattern = StreamPattern(
            levels=[
                Level(Descriptor(0, 1, 1)),
                Level(
                    Descriptor(0, 3, 0),
                    [IndirectModifier(Param.OFFSET, IndirectBehavior.SET_ADD, origin)],
                ),
            ]
        )
        reader = self._memory_reader(idx)
        assert elem_addrs(pattern, reader) == [4, 9, 1]

    def test_origin_exhaustion_raises(self):
        idx = [4]
        origin = linear(base=0, size=1, etype=ElementType.I32)
        pattern = StreamPattern(
            levels=[
                Level(Descriptor(0, 1, 1)),
                Level(
                    Descriptor(0, 3, 0),
                    [IndirectModifier(Param.OFFSET, IndirectBehavior.SET_ADD, origin)],
                ),
            ]
        )
        with pytest.raises(StreamError):
            StreamIterator(pattern, self._memory_reader(idx)).materialize()


class TestPatternValidation:
    def test_max_dims_enforced(self):
        levels = [Level(Descriptor(0, 1, 1)) for _ in range(9)]
        with pytest.raises(DescriptorError):
            StreamPattern(levels=levels)

    def test_eight_dims_supported(self):
        levels = [Level(Descriptor(0, 2, 1)) for _ in range(8)]
        assert StreamPattern(levels=levels).static_element_count() == 2 ** 8

    def test_max_modifiers_enforced(self):
        mods = [StaticModifier(Param.SIZE, StaticBehavior.ADD, 1, 1)] * 8
        with pytest.raises(DescriptorError):
            StreamPattern(
                levels=[
                    Level(Descriptor(0, 1, 1)),
                    Level(Descriptor(0, 1, 1), mods),
                ]
            )

    def test_dim0_must_have_descriptor(self):
        with pytest.raises(DescriptorError):
            StreamPattern(
                levels=[
                    Level(
                        None,
                        [
                            IndirectModifier(
                                Param.OFFSET,
                                IndirectBehavior.SET_ADD,
                                linear(0, 1, etype=ElementType.I32),
                            )
                        ],
                    )
                ]
            )

    def test_dim0_cannot_carry_modifiers(self):
        with pytest.raises(DescriptorError):
            StreamPattern(
                levels=[
                    Level(
                        Descriptor(0, 1, 1),
                        [StaticModifier(Param.SIZE, StaticBehavior.ADD, 1, 1)],
                    )
                ]
            )

    def test_storage_bytes_1d(self):
        assert linear(0, 8).storage_bytes() == 32  # paper: 32 B for 1-D state

    def test_storage_bytes_max_pattern(self):
        mods = [StaticModifier(Param.SIZE, StaticBehavior.ADD, 1, 1)] * 7
        levels = [Level(Descriptor(0, 1, 1)) for _ in range(7)]
        levels.append(Level(Descriptor(0, 1, 1), mods))
        pattern = StreamPattern(levels=levels)
        # 8 dims + 7 modifiers: within the paper's <=400 B context bound.
        assert pattern.storage_bytes() <= 400


class TestVectorChunker:
    def test_chunks_of_vector_length(self):
        pattern = linear(base=0, size=10)
        chunks = list(VectorChunker(StreamIterator(pattern), lanes=4))
        assert [len(c.addresses) for c in chunks] == [4, 4, 2]
        assert [c.dims_ended for c in chunks] == [-1, -1, 0]

    def test_chunks_break_at_dim0_boundary(self):
        # Rows of 3 with 4 lanes: every chunk is one (padded) row.
        pattern = rectangular(base=0, rows=2, cols=3)
        chunks = list(VectorChunker(StreamIterator(pattern), lanes=4))
        assert [len(c.addresses) for c in chunks] == [3, 3]
        assert [c.dims_ended for c in chunks] == [0, 1]

    def test_long_rows_split(self):
        pattern = rectangular(base=0, rows=2, cols=5)
        chunks = list(VectorChunker(StreamIterator(pattern), lanes=4))
        assert [len(c.addresses) for c in chunks] == [4, 1, 4, 1]

    def test_exact_multiple_rows(self):
        pattern = rectangular(base=0, rows=2, cols=4)
        chunks = list(VectorChunker(StreamIterator(pattern), lanes=4))
        assert [len(c.addresses) for c in chunks] == [4, 4]
        assert [c.dims_ended for c in chunks] == [0, 1]

    def test_invalid_lanes(self):
        with pytest.raises(DescriptorError):
            VectorChunker(StreamIterator(linear(0, 1)), lanes=0)
