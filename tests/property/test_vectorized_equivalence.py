"""Equivalence properties for the two performance paths introduced by
the vectorization work:

* functional: the vectorized (run-granular, NumPy) stream path must be
  observationally identical to the legacy element-granular path over
  randomly generated stream programs — same memory image, same commit
  count, same recorded chunk trace;
* timing: ``event_batching`` and ``fast_forward`` are pure fast paths,
  so every PipelineStats field must be bit-identical across all four
  on/off combinations.
"""
import numpy as np
import pytest

from repro.cpu.pipeline import Pipeline
from repro.fuzz.generator import generate_spec
from repro.fuzz.lowering import lower
from repro.fuzz.oracle import clone_memory
from repro.fuzz.reference import materialize
from repro.harness import bench
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.functional import FunctionalSimulator

CASES = [(seed, index) for seed in (7, 42) for index in range(8)]


def run_functional(program, memory, vector_bits, vectorized):
    sim = FunctionalSimulator(
        program,
        memory=memory,
        vector_bits=vector_bits,
        vectorized_streams=vectorized,
    )
    summary = sim.run()
    return summary, memory


@pytest.mark.parametrize("seed,index", CASES)
def test_vectorized_streams_match_legacy(seed, index):
    spec = generate_spec(seed, index)
    art = materialize(spec)
    program = lower(spec, art, "uve")

    fast_sum, fast_mem = run_functional(
        program, clone_memory(art.memory), spec.vector_bits, True
    )
    ref_sum, ref_mem = run_functional(
        program, clone_memory(art.memory), spec.vector_bits, False
    )

    np.testing.assert_array_equal(fast_mem.data, ref_mem.data)
    assert fast_sum.committed == ref_sum.committed
    assert fast_sum.streams.keys() == ref_sum.streams.keys()
    for uid, fast_info in fast_sum.streams.items():
        ref_info = ref_sum.streams[uid]
        assert fast_info.chunks == ref_info.chunks
        assert fast_info.chunk_flags == ref_info.chunk_flags
        assert fast_info.origin_reads == ref_info.origin_reads


@pytest.mark.parametrize("kernel,isa", [("stream", "uve"), ("memcpy", "uve")])
def test_pipeline_stats_identical_across_fast_paths(kernel, isa):
    mat = bench.materialize(kernel, isa, scale=0.12)
    results = {}
    for fast_forward in (False, True):
        for batching in (False, True):
            cfg = mat.config.with_(
                fast_forward=fast_forward, event_batching=batching
            )
            hierarchy = MemoryHierarchy(cfg)
            hierarchy.warm(0, mat.mem_bytes)
            pipeline = Pipeline(cfg, hierarchy, dict(mat.stream_infos))
            pipeline.run(iter(mat.trace))
            occupancy = (
                pipeline.engine.stats.mean_fifo_occupancy
                if pipeline.engine is not None
                else 0.0
            )
            results[(fast_forward, batching)] = (
                pipeline.stats.as_dict(),
                occupancy,
            )
    reference = results[(False, False)]
    for key, got in results.items():
        assert got == reference, f"stats diverged for ff/batching={key}"
