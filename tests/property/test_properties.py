"""Property-based tests (hypothesis) on core data structures."""
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import ElementType
from repro.cpu.config import CacheConfig
from repro.memory.backing import Memory
from repro.memory.cache import Cache
from repro.memory.slots import SlotReservoir
from repro.streams import (
    Descriptor,
    Level,
    StreamIterator,
    StreamPattern,
    VectorChunker,
)

# -- Stream iterator ----------------------------------------------------------

dims_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=64),  # offset
        st.integers(min_value=0, max_value=6),  # size
        st.integers(min_value=-4, max_value=8),  # stride
    ),
    min_size=1,
    max_size=4,
)


def reference_addresses(dims):
    """Nested-loop expansion of a modifier-free pattern (element units)."""

    def rec(level):
        if level < 0:
            return [0]
        offset, size, stride = dims[level]
        inner = rec(level - 1)
        out = []
        for i in range(size):
            disp = offset + i * stride
            out.extend(disp + a for a in inner)
        return out

    # dims[0] is innermost: recurse from the outermost level.
    def rec2(level_idx, disp):
        offset, size, stride = dims[level_idx]
        if level_idx == 0:
            return [disp + offset + i * stride for i in range(size)]
        out = []
        for i in range(size):
            out.extend(rec2(level_idx - 1, disp + offset + i * stride))
        return out

    return rec2(len(dims) - 1, 0)


@given(dims_strategy)
@settings(max_examples=200, deadline=None)
def test_iterator_matches_nested_loops(dims):
    pattern = StreamPattern(
        levels=[Level(Descriptor(o, e, s)) for (o, e, s) in dims],
        etype=ElementType.F32,
    )
    got = [a // 4 for a in StreamIterator(pattern).addresses()]
    assert got == reference_addresses(dims)


@given(dims_strategy)
@settings(max_examples=200, deadline=None)
def test_iterator_flags_form_valid_boundaries(dims):
    pattern = StreamPattern(
        levels=[Level(Descriptor(o, e, s)) for (o, e, s) in dims]
    )
    elements = StreamIterator(pattern).materialize()
    if not elements:
        return
    # The final element always closes every dimension.
    assert elements[-1].dims_ended == pattern.ndims - 1
    # Boundary counts nest: exactly prod(sizes[k+1:]) elements close dim k
    # (when all inner dims are non-empty).
    sizes = [d[1] for d in dims]
    if all(s > 0 for s in sizes):
        for k in range(len(dims)):
            expected = int(np.prod(sizes[k + 1 :])) if k + 1 < len(sizes) else 1
            closing = sum(1 for e in elements if e.dims_ended >= k)
            assert closing == expected


@given(dims_strategy, st.integers(min_value=1, max_value=8))
@settings(max_examples=200, deadline=None)
def test_chunker_partitions_elements(dims, lanes):
    pattern = StreamPattern(
        levels=[Level(Descriptor(o, e, s)) for (o, e, s) in dims]
    )
    elements = StreamIterator(pattern).materialize()
    chunks = list(VectorChunker(StreamIterator(pattern), lanes))
    flat = [a for c in chunks for a in c.addresses]
    assert flat == [e.address for e in elements]
    assert all(1 <= len(c.addresses) <= lanes for c in chunks)
    # A chunk never crosses a dimension-0 boundary: within a chunk only
    # the final element may carry a boundary flag.
    i = 0
    for chunk in chunks:
        for j in range(len(chunk.addresses) - 1):
            assert elements[i + j].dims_ended < 0
        i += len(chunk.addresses)


# -- Slot reservoir -----------------------------------------------------------


@given(
    st.lists(st.floats(min_value=0, max_value=1e5, allow_nan=False),
             min_size=1, max_size=200),
    st.integers(min_value=1, max_value=4),
    st.floats(min_value=0.5, max_value=10),
)
@settings(max_examples=100, deadline=None)
def test_slot_reservoir_invariants(times, lanes, width):
    res = SlotReservoir(lanes, width)
    for t in times:
        s = res.reserve(t)
        assert s >= t  # causality: never starts before the request
    # No slot is over-subscribed (internal ledger invariant).
    assert all(v <= lanes for v in res._busy.values())


@given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False),
                min_size=2, max_size=50))
@settings(max_examples=100, deadline=None)
def test_slot_reservoir_future_work_never_blocks_present(times):
    res = SlotReservoir(1, 1.0)
    res.reserve(1e9)  # far-future reservation
    for t in times:
        assert res.reserve(t) < 1e8  # present requests unaffected


# -- Cache structure ----------------------------------------------------------


class _FlatNext:
    def access(self, line, now, is_write):
        return now + 50


@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                max_size=300))
@settings(max_examples=100, deadline=None)
def test_cache_never_exceeds_associativity(lines):
    cache = Cache(CacheConfig("T", 4096, 2, 1, 4), _FlatNext())
    t = 0.0
    for line in lines:
        t = max(t, cache.access(line, t)) + 1
    for cset in cache._sets:
        assert len(cset) <= cache.config.assoc
    # Every recently-accessed line that maps to a set is either present or
    # was evicted by a later line of the same set — accesses always hit
    # immediately after.
    last = lines[-1]
    assert cache.contains(last)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                max_size=200))
@settings(max_examples=50, deadline=None)
def test_cache_hits_plus_misses_equals_accesses(lines):
    cache = Cache(CacheConfig("T", 8192, 4, 1, 4), _FlatNext())
    t = 0.0
    for line in lines:
        t = max(t, cache.access(line, t)) + 1
    s = cache.stats
    assert s.hits + s.misses == s.accesses == len(lines)


# -- Memory round-trips ---------------------------------------------------------

_ETYPES = [ElementType.I8, ElementType.I16, ElementType.I32, ElementType.I64,
           ElementType.F32, ElementType.F64]


@given(
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=-(2 ** 15), max_value=2 ** 15 - 1),
    st.sampled_from(_ETYPES),
)
@settings(max_examples=200, deadline=None)
def test_memory_scalar_roundtrip(slot, value, etype):
    mem = Memory(1 << 16)
    addr = slot * 8  # aligned for every width
    if not etype.is_float:
        # Wrap into the representable range of the target width.
        value = int(np.array(value).astype(etype.dtype))
    mem.write_scalar(addr, value, etype)
    got = mem.read_scalar(addr, etype)
    if etype.is_float:
        assert got == float(np.dtype(etype.dtype).type(value))
    else:
        assert got == value


@given(st.integers(min_value=1, max_value=64), st.integers(0, 100))
@settings(max_examples=100, deadline=None)
def test_memory_block_roundtrip(count, seed):
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(count).astype(np.float32)
    mem = Memory(1 << 16)
    addr = mem.alloc(count * 4)
    mem.write_block(addr, values)
    np.testing.assert_array_equal(
        mem.read_block(addr, count, ElementType.F32), values
    )


# -- Affine compiler ------------------------------------------------------------

from repro.streams.compiler import AffineAccess, LoopNest, compile_access


@given(
    st.lists(st.tuples(st.integers(1, 5),          # bound
                       st.integers(-8, 16)),       # coefficient
            min_size=1, max_size=4),
    st.integers(0, 100),  # base
    st.integers(-4, 4),   # constant offset
)
@settings(max_examples=200, deadline=None)
def test_affine_compiler_matches_loop_nest(loops, base, offset):
    names = [f"v{i}" for i in range(len(loops))]
    nest = LoopNest(names, {n: b for n, (b, _) in zip(names, loops)})
    access = AffineAccess(
        "A", base=base, offset=offset,
        terms={n: c for n, (_, c) in zip(names, loops) if c != 0},
    )
    pattern = compile_access(nest, access)
    got = [a // 4 for a in
           __import__("repro.streams", fromlist=["StreamIterator"])
           .StreamIterator(pattern).addresses()]

    def rec(vars_left, env):
        if not vars_left:
            return [base + offset + sum(
                access.terms.get(v, 0) * env[v] for v in env)]
        v, rest = vars_left[0], vars_left[1:]
        out = []
        for value in range(nest.bounds[v]):
            env2 = dict(env); env2[v] = value
            out.extend(rec(rest, env2))
        return out

    assert got == rec(list(nest.variables), {})


# -- Streaming Engine delivery invariants ----------------------------------------

from repro.cpu.config import EngineConfig
from repro.engine.engine import StreamingEngine
from repro.sim.trace import StreamTraceInfo
from repro.streams.pattern import Direction, MemLevel


class _FixedMemory:
    line_bytes = 64

    class _Tlb:
        walk_latency = 20

        @staticmethod
        def translate(addr):
            return 0

        @staticmethod
        def probe(addr):
            return True

    class _L1:
        @staticmethod
        def can_accept(now):
            return True

    def __init__(self, latency):
        self.latency = latency
        self.tlb = self._Tlb()
        self.l1d = self._L1()

    def stream_read(self, line, now, level):
        return now + self.latency

    def stream_write(self, line, now, level):
        return now + 1


@given(
    st.lists(st.integers(min_value=1, max_value=4),  # lines per chunk
             min_size=1, max_size=20),
    st.integers(min_value=1, max_value=12),  # fifo depth
    st.integers(min_value=1, max_value=50),  # memory latency
)
@settings(max_examples=100, deadline=None)
def test_engine_delivers_every_chunk_once_in_order(chunk_sizes, depth, latency):
    info = StreamTraceInfo(
        uid=0, reg=0, direction=Direction.LOAD,
        etype=ElementType.F32, mem_level=MemLevel.L2,
        ndims=1, storage_bytes=32,
    )
    addr = 0
    for size in chunk_sizes:
        info.chunks.append([addr + i * 64 for i in range(size)])
        info.origin_reads.append([])
        info.chunk_flags.append(0)
        addr += size * 64
    info.chunk_flags[-1] = 0

    engine = StreamingEngine(
        EngineConfig(fifo_depth=depth, processing_modules=2),
        _FixedMemory(latency),
    )
    engine.configure(info, 0)
    ready = {}
    cycle = 0
    # Consume chunks as they become ready, committing immediately.
    next_chunk = 0
    while next_chunk < len(chunk_sizes) and cycle < 100_000:
        engine.tick(cycle)
        while (next_chunk < len(chunk_sizes)
               and engine.chunk_ready(0, next_chunk) <= cycle):
            ready[next_chunk] = engine.chunk_ready(0, next_chunk)
            engine.commit_read(0, next_chunk)
            next_chunk += 1
        cycle += 1
    # Every chunk was delivered, in order, with sane timing.
    assert next_chunk == len(chunk_sizes)
    times = [ready[i] for i in range(len(chunk_sizes))]
    assert all(t >= latency for t in times)
    assert engine.stats.chunks_filled == len(chunk_sizes)
