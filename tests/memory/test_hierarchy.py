"""Unit tests for the memory hierarchy wiring and stream bypass paths."""
from repro.cpu.config import MachineConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.streams.pattern import MemLevel


def make_hierarchy():
    return MemoryHierarchy(MachineConfig())


class TestDemandPath:
    def test_cold_demand_miss_walks_to_dram(self):
        h = make_hierarchy()
        done = h.demand_access(0x10000, now=0, is_write=False)
        assert done > h.config.dram.access_latency  # L1+L2 miss + DRAM
        assert h.dram.reads == 1

    def test_warm_l2_shortens_latency(self):
        h = make_hierarchy()
        h.warm(0x10000, 64)
        done = h.demand_access(0x10000, now=100, is_write=False)
        assert done - 100 < 40  # L1 miss, L2 hit
        assert h.dram.reads == 0

    def test_second_access_hits_l1(self):
        h = make_hierarchy()
        first = h.demand_access(0x10000, 0, False)
        second = h.demand_access(0x10000, first, False)
        assert second - first <= h.config.l1d.hit_latency + 1


class TestStreamPath:
    def test_l2_stream_bypasses_l1(self):
        h = make_hierarchy()
        h.warm(0x20000, 64)
        line = h.line_of(0x20000)
        h.stream_read(line, 0, MemLevel.L2)
        assert h.l1d.stats.bypasses == 1
        assert not h.l1d.contains(line)  # no L1 allocation
        assert h.l2.stats.hits == 1

    def test_l1_stream_allocates_in_l1(self):
        h = make_hierarchy()
        h.warm(0x20000, 64)
        line = h.line_of(0x20000)
        h.stream_read(line, 0, MemLevel.L1)
        assert h.l1d.contains(line)

    def test_mem_stream_bypasses_both(self):
        h = make_hierarchy()
        h.warm(0x20000, 64)
        line = h.line_of(0x20000)
        h.stream_read(line, 0, MemLevel.MEM)
        assert h.dram.reads == 1  # straight to memory
        assert not h.l1d.contains(line)

    def test_stream_write_goes_to_l1(self):
        h = make_hierarchy()
        line = h.line_of(0x30000)
        h.stream_write(line, 0, MemLevel.L2)
        assert h.l1d.contains(line)

    def test_lines_of_dedupes_in_order(self):
        h = make_hierarchy()
        addrs = [0, 4, 8, 64, 68, 0]  # lines 0,0,0,1,1,0
        assert h.lines_of(addrs) == [0, 1]


class TestWarm:
    def test_warm_fills_l2_up_to_capacity(self):
        h = make_hierarchy()
        h.warm(0, 512 * 1024)  # 2x the L2
        lines = sum(len(s) for s in h.l2._sets)
        assert lines == h.config.l2.size_bytes // 64  # full, not over

    def test_utilization_starts_at_zero(self):
        h = make_hierarchy()
        assert h.bus_utilization(1000) == 0.0
