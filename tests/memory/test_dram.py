"""Unit tests for the DRAM bandwidth/latency model."""
from repro.cpu.config import DramConfig
from repro.memory.dram import Dram


def make_dram(**kw):
    return Dram(DramConfig(**kw))


class TestLatency:
    def test_read_latency(self):
        d = make_dram()
        done = d.access(0, now=0, is_write=False)
        cfg = d.config
        assert done == cfg.access_latency + cfg.line_transfer_cycles

    def test_write_is_posted(self):
        d = make_dram()
        done = d.access(0, now=0, is_write=True)
        assert done == d.config.line_transfer_cycles

    def test_later_now_shifts_completion(self):
        base = make_dram().access(0, 0, False)
        assert make_dram().access(0, 100, False) == 100 + base


class TestChannelContention:
    def test_same_channel_serializes(self):
        d = make_dram(channels=2)
        first = d.access(0, 0, False)
        second = d.access(2, 0, False)  # line 2 -> same channel as line 0
        assert second == first + d.config.line_transfer_cycles

    def test_different_channels_overlap(self):
        d = make_dram(channels=2)
        first = d.access(0, 0, False)
        second = d.access(1, 0, False)  # other channel
        assert second == first

    def test_channel_mapping_interleaves_lines(self):
        d = make_dram(channels=2)
        assert d.channel_of(0) != d.channel_of(1)
        assert d.channel_of(0) == d.channel_of(2)


class TestStats:
    def test_bytes_accounted(self):
        d = make_dram()
        d.access(0, 0, False)
        d.access(1, 0, True)
        assert d.bytes_read == 64
        assert d.bytes_written == 64
        assert d.total_bytes == 128

    def test_bus_utilization(self):
        d = make_dram()
        for i in range(10):
            d.access(i, 0, False)
        cycles = 1000
        expected = 640 / (d.config.peak_bytes_per_cycle * cycles)
        assert abs(d.bus_utilization(cycles) - expected) < 1e-12

    def test_full_utilization_is_one(self):
        d = make_dram(channels=1)
        t = 0.0
        for i in range(100):
            t = max(t, d.access(2 * i, t, is_write=True))
        # Back-to-back writes keep the single channel 100% busy.
        assert abs(d.bus_utilization(t) - 1.0) < 1e-9

    def test_reset(self):
        d = make_dram()
        d.access(0, 0, False)
        d.reset_stats()
        assert d.total_bytes == 0 and d.reads == 0
