"""Unit tests for the cache timing model."""
from repro.cpu.config import CacheConfig
from repro.memory.cache import Cache
from repro.memory.coherence import LineState


class FakeNext:
    """Fixed-latency next level recording accesses."""

    def __init__(self, latency=100):
        self.latency = latency
        self.accesses = []

    def access(self, line, now, is_write):
        self.accesses.append((line, now, is_write))
        return now + self.latency


def make_cache(size=1024, assoc=2, hit=4, mshrs=4, prefetcher=None, latency=100):
    nxt = FakeNext(latency)
    cache = Cache(CacheConfig("T", size, assoc, hit, mshrs), nxt, prefetcher)
    return cache, nxt


class TestHitMiss:
    def test_cold_miss_goes_to_next_level(self):
        cache, nxt = make_cache()
        done = cache.access(5, now=0)
        assert nxt.accesses == [(5, 4, False)]  # after lookup latency
        assert done == 4 + 100 + 1

    def test_hit_after_fill(self):
        cache, nxt = make_cache()
        t1 = cache.access(5, now=0)
        t2 = cache.access(5, now=t1)
        assert t2 == t1 + 4
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_late_hit_waits_for_inflight_fill(self):
        cache, _ = make_cache()
        t1 = cache.access(5, now=0)
        # Second access arrives while the fill is still in flight.
        t2 = cache.access(5, now=1)
        assert t2 >= t1 - 1  # waits for fill, then hit latency
        assert cache.stats.late_hits == 1

    def test_lru_eviction(self):
        cache, _ = make_cache(size=256, assoc=2)  # 2 sets, 2 ways
        s = cache.config.num_sets
        cache.access(0, 0)
        cache.access(s, 0)  # same set as 0
        cache.access(0, 500)  # touch 0 -> line s becomes LRU
        cache.access(2 * s, 600)  # evicts line s
        assert cache.contains(0)
        assert not cache.contains(s)
        assert cache.contains(2 * s)

    def test_write_allocates_modified(self):
        cache, _ = make_cache()
        cache.access(7, 0, is_write=True)
        assert cache.line_state(7) is LineState.MODIFIED

    def test_read_allocates_exclusive(self):
        cache, _ = make_cache()
        cache.access(7, 0)
        assert cache.line_state(7) is LineState.EXCLUSIVE

    def test_write_hit_upgrades_to_modified(self):
        cache, _ = make_cache()
        t = cache.access(7, 0)
        cache.access(7, t, is_write=True)
        assert cache.line_state(7) is LineState.MODIFIED

    def test_dirty_eviction_writes_back(self):
        cache, nxt = make_cache(size=256, assoc=2)
        s = cache.config.num_sets
        t = cache.access(0, 0, is_write=True)
        t = cache.access(s, t)
        t = cache.access(2 * s, t)  # evicts dirty line 0
        assert cache.stats.writebacks == 1
        assert any(w for (_, __, w) in nxt.accesses)


class TestMshrs:
    def test_mshr_saturation_delays_misses(self):
        cache, _ = make_cache(mshrs=2, latency=100)
        t0 = cache.access(0, 0)
        t1 = cache.access(1 + cache.config.num_sets, 0)
        t2 = cache.access(2 + 2 * cache.config.num_sets, 0)
        assert t0 == t1  # two MSHRs -> both overlap
        assert t2 > t1  # third miss waits for an MSHR

    def test_bypass_skips_allocation(self):
        cache, nxt = make_cache()
        done = cache.access(9, 0, cacheable=False)
        assert not cache.contains(9)
        assert cache.stats.bypasses == 1
        assert nxt.accesses == [(9, 1, False)]
        assert done == 1 + 100


class TestPrefetcherIntegration:
    class SequentialPf:
        def observe(self, pc, addr):
            return [addr // 64 + 1]

    def test_prefetch_fills_next_line(self):
        cache, _ = make_cache(prefetcher=self.SequentialPf())
        cache.access(0, 0)
        assert cache.contains(1)
        assert cache.stats.prefetch_fills == 1

    def test_prefetch_hit_counted(self):
        cache, _ = make_cache(prefetcher=self.SequentialPf())
        cache.access(0, 0)
        cache.access(1, 1000)
        assert cache.stats.prefetch_hits == 1

    def test_prefetched_line_in_flight_gives_late_hit(self):
        cache, _ = make_cache(prefetcher=self.SequentialPf(), latency=100)
        cache.access(0, 0)
        done = cache.access(1, 2)  # prefetch of line 1 still in flight
        assert cache.stats.late_hits == 1
        assert done > 2 + cache.config.hit_latency
