"""Unit tests for the stride and AMPM prefetchers."""
from repro.memory.prefetchers import AmpmPrefetcher, StridePrefetcher


class TestStride:
    def test_trains_on_constant_stride(self):
        pf = StridePrefetcher(depth=4)
        out = []
        for i in range(5):
            out = pf.observe(pc=0x40, addr=1000 + i * 64)
        assert out  # trained after a few accesses
        # Prefetches at the configured distance ahead, in stride direction.
        assert out[0] == (1000 + 4 * 64 + 4 * 64) // 64

    def test_untrained_issues_nothing(self):
        pf = StridePrefetcher()
        assert pf.observe(0x40, 1000) == []
        assert pf.observe(0x40, 5000) == []

    def test_depth_limits_distance(self):
        pf = StridePrefetcher(depth=16, degree=16)
        out = []
        for i in range(6):
            out = pf.observe(0x40, i * 64)
        assert len(out) == 16
        assert max(out) == 5 + 16  # never beyond depth lines ahead

    def test_degree_limits_issue_rate(self):
        pf = StridePrefetcher(depth=16, degree=2)
        out = []
        for i in range(6):
            out = pf.observe(0x40, i * 64)
        assert len(out) == 2

    def test_small_stride_dedupes_lines(self):
        pf = StridePrefetcher(depth=16)
        out = []
        for i in range(6):
            out = pf.observe(0x40, i * 4)  # stride 4 B within lines
        assert len(out) == len(set(out))

    def test_stride_change_resets_confidence(self):
        pf = StridePrefetcher()
        for i in range(4):
            pf.observe(0x40, i * 64)
        assert pf.observe(0x40, 10_000) == []  # broken stride

    def test_distinct_pcs_distinct_entries(self):
        pf = StridePrefetcher()
        for i in range(4):
            pf.observe(0x40, i * 64)
        # A different PC must not inherit the training.
        assert pf.observe(0x44, 9999) == []

    def test_negative_stride(self):
        pf = StridePrefetcher(depth=2)
        out = []
        for i in range(5):
            out = pf.observe(0x40, 10_000 - i * 64)
        assert out and out[0] < 10_000 // 64


class TestAmpm:
    def test_matches_forward_unit_stride(self):
        pf = AmpmPrefetcher()
        out = []
        for i in range(4):
            out = pf.observe(0, i * 64)
        assert out
        assert (3 * 64) // 64 + 1 in out

    def test_matches_strided_pattern(self):
        pf = AmpmPrefetcher()
        out = []
        for i in range(4):
            out = pf.observe(0, i * 128)  # stride of 2 lines
        assert any(line == (3 * 2) + 2 for line in out)

    def test_matches_backward_pattern(self):
        pf = AmpmPrefetcher()
        out = []
        for i in range(4):
            out = pf.observe(0, (100 - i) * 64)
        assert any(line < 97 for line in out)

    def test_queue_size_bounds_prefetches(self):
        pf = AmpmPrefetcher(queue_size=2)
        out = []
        for i in range(10):
            out = pf.observe(0, i * 64)
        assert len(out) <= 2

    def test_zone_capacity_lru(self):
        pf = AmpmPrefetcher(zones=2)
        pf.observe(0, 0)
        pf.observe(0, 2 * 4096)
        pf.observe(0, 4 * 4096)  # evicts zone 0
        assert len(pf._zones) == 2

    def test_no_match_on_random_accesses(self):
        pf = AmpmPrefetcher()
        assert pf.observe(0, 0) == []
        assert pf.observe(0, 64 * 17) == []
