"""Unit tests for the vectorized Memory access paths (gather/scatter/
block) against the scalar loop they replace: same values, same bounds
errors, same partial effects."""
import numpy as np
import pytest

from repro.common.types import ElementType
from repro.errors import MemoryAccessError
from repro.memory.backing import Memory

F32 = ElementType.F32
I64 = ElementType.I64


def scalar_gather(mem, addrs, etype):
    return np.array(
        [mem.read_scalar(a, etype) for a in addrs], dtype=etype.dtype
    )


class TestGather:
    def test_aligned_matches_scalar_loop(self):
        mem = Memory(1 << 12)
        addrs = np.array([64, 128, 64, 256, 72], dtype=np.int64)
        for i, a in enumerate(addrs):
            mem.write_scalar(int(a), float(i + 1), F32)
        np.testing.assert_array_equal(
            mem.read_gather(addrs, F32), scalar_gather(mem, addrs, F32)
        )

    def test_unaligned_matches_scalar_loop(self):
        mem = Memory(1 << 12)
        rng = np.random.default_rng(3)
        mem.data[:] = rng.integers(0, 256, size=mem.size, dtype=np.uint8)
        addrs = np.array([65, 130, 67, 258], dtype=np.int64)  # none % 4 == 0
        np.testing.assert_array_equal(
            mem.read_gather(addrs, F32), scalar_gather(mem, addrs, F32)
        )

    def test_mixed_alignment_matches_scalar_loop(self):
        mem = Memory(1 << 12)
        rng = np.random.default_rng(4)
        mem.data[:] = rng.integers(0, 256, size=mem.size, dtype=np.uint8)
        addrs = np.array([64, 65, 128, 131], dtype=np.int64)
        np.testing.assert_array_equal(
            mem.read_gather(addrs, F32), scalar_gather(mem, addrs, F32)
        )

    def test_out_of_bounds_raises_first_offender(self):
        mem = Memory(256)
        addrs = np.array([0, 64, 1024, 2048], dtype=np.int64)
        with pytest.raises(MemoryAccessError, match=r"\[1024, 1028\)"):
            mem.read_gather(addrs, F32)

    def test_negative_address_raises(self):
        mem = Memory(256)
        with pytest.raises(MemoryAccessError):
            mem.read_gather(np.array([-4], dtype=np.int64), F32)


class TestScatter:
    def test_aligned_matches_scalar_loop(self):
        addrs = np.array([64, 128, 72, 256], dtype=np.int64)
        values = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
        vec, ref = Memory(1 << 12), Memory(1 << 12)
        vec.write_scatter(addrs, values, F32)
        for a, v in zip(addrs, values):
            ref.write_scalar(int(a), float(v), F32)
        np.testing.assert_array_equal(vec.data, ref.data)

    def test_unaligned_matches_scalar_loop(self):
        addrs = np.array([65, 130, 71], dtype=np.int64)
        values = np.array([1.5, -2.5, 3.25], dtype=np.float32)
        vec, ref = Memory(1 << 12), Memory(1 << 12)
        vec.write_scatter(addrs, values, F32)
        for a, v in zip(addrs, values):
            ref.write_scalar(int(a), float(v), F32)
        np.testing.assert_array_equal(vec.data, ref.data)

    def test_duplicate_addresses_last_write_wins(self):
        mem = Memory(1 << 12)
        addrs = np.array([64, 64, 64], dtype=np.int64)
        mem.write_scatter(
            addrs, np.array([1.0, 2.0, 3.0], dtype=np.float32), F32
        )
        assert mem.read_scalar(64, F32) == 3.0

    def test_out_of_bounds_writes_prefix_then_raises(self):
        # A sequential scalar loop writes elements 0..k-1 before element
        # k faults; the vector path must leave memory in the same state.
        mem = Memory(256)
        addrs = np.array([0, 4, 1024, 8], dtype=np.int64)
        values = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
        with pytest.raises(MemoryAccessError, match=r"\[1024, 1028\)"):
            mem.write_scatter(addrs, values, F32)
        assert mem.read_scalar(0, F32) == 1.0
        assert mem.read_scalar(4, F32) == 2.0
        # The element after the faulting one must NOT have been written.
        assert mem.read_scalar(8, F32) == 0.0

    def test_wide_element_type(self):
        mem = Memory(1 << 12)
        addrs = np.array([64, 80, 72], dtype=np.int64)
        values = np.array([1, -2, 1 << 40], dtype=np.int64)
        mem.write_scatter(addrs, values, I64)
        got = mem.read_gather(addrs, I64)
        np.testing.assert_array_equal(got, values)


class TestBlock:
    def test_roundtrip_aligned(self):
        mem = Memory(1 << 12)
        values = np.arange(16, dtype=np.float32)
        mem.write_block(256, values)
        np.testing.assert_array_equal(mem.read_block(256, 16, F32), values)

    def test_roundtrip_unaligned(self):
        mem = Memory(1 << 12)
        values = np.arange(8, dtype=np.float32)
        mem.write_block(258, values)
        np.testing.assert_array_equal(mem.read_block(258, 8, F32), values)

    def test_block_matches_gather_on_contiguous_addresses(self):
        mem = Memory(1 << 12)
        rng = np.random.default_rng(5)
        mem.data[:] = rng.integers(0, 256, size=mem.size, dtype=np.uint8)
        addrs = np.arange(64, 64 + 16 * 4, 4, dtype=np.int64)
        np.testing.assert_array_equal(
            mem.read_block(64, 16, F32), mem.read_gather(addrs, F32)
        )

    def test_out_of_bounds_block_raises(self):
        mem = Memory(256)
        with pytest.raises(MemoryAccessError):
            mem.read_block(200, 100, F32)
        with pytest.raises(MemoryAccessError):
            mem.write_block(250, np.ones(4, dtype=np.float32))
