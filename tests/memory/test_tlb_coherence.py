"""Unit tests for the TLB and the MOESI coherence protocol."""
import pytest

from repro.errors import PageFaultError
from repro.memory.coherence import CoherenceError, Event, LineState, next_state
from repro.memory.tlb import Tlb


class TestTlb:
    def test_first_access_misses_then_hits(self):
        tlb = Tlb(walk_latency=20)
        assert tlb.translate(0x1234) == 20
        assert tlb.translate(0x1238) == 0
        assert tlb.hits == 1 and tlb.misses == 1

    def test_distinct_pages_miss(self):
        tlb = Tlb()
        tlb.translate(0)
        assert tlb.translate(4096) == tlb.walk_latency

    def test_capacity_lru_eviction(self):
        tlb = Tlb(entries=2)
        tlb.translate(0)
        tlb.translate(4096)
        tlb.translate(0)  # refresh page 0
        tlb.translate(8192)  # evicts page 1
        assert tlb.translate(0) == 0
        assert tlb.translate(4096) == tlb.walk_latency

    def test_page_fault_raises(self):
        tlb = Tlb(is_mapped=lambda page: page < 10)
        with pytest.raises(PageFaultError):
            tlb.translate(11 * 4096)
        assert tlb.faults == 1

    def test_probe_does_not_fault(self):
        tlb = Tlb(is_mapped=lambda page: page < 10)
        assert tlb.probe(4096) is True
        assert tlb.probe(11 * 4096) is False

    def test_flush(self):
        tlb = Tlb()
        tlb.translate(0)
        tlb.flush()
        assert tlb.translate(0) == tlb.walk_latency


class TestMoesi:
    def test_load_from_invalid_allocates_exclusive(self):
        state, supplies, wb = next_state(LineState.INVALID, Event.LOAD)
        assert state is LineState.EXCLUSIVE and not supplies and not wb

    def test_store_from_invalid_allocates_modified(self):
        state, _, __ = next_state(LineState.INVALID, Event.STORE)
        assert state is LineState.MODIFIED

    def test_store_upgrades_exclusive(self):
        state, _, __ = next_state(LineState.EXCLUSIVE, Event.STORE)
        assert state is LineState.MODIFIED

    def test_modified_evict_writes_back(self):
        state, _, wb = next_state(LineState.MODIFIED, Event.EVICT)
        assert state is LineState.INVALID and wb

    def test_owned_evict_writes_back(self):
        _, __, wb = next_state(LineState.OWNED, Event.EVICT)
        assert wb

    def test_shared_evict_is_silent(self):
        _, __, wb = next_state(LineState.SHARED, Event.EVICT)
        assert not wb

    def test_snoop_read_of_modified_gives_owned_and_data(self):
        state, supplies, _ = next_state(LineState.MODIFIED, Event.BUS_READ)
        assert state is LineState.OWNED and supplies

    def test_snoop_rdx_invalidates(self):
        for start in (LineState.MODIFIED, LineState.OWNED, LineState.EXCLUSIVE,
                      LineState.SHARED):
            state, _, __ = next_state(start, Event.BUS_RDX)
            assert state is LineState.INVALID

    def test_upgrade_invalidates_shared(self):
        state, _, __ = next_state(LineState.SHARED, Event.BUS_UPGRADE)
        assert state is LineState.INVALID

    def test_illegal_transition_raises(self):
        with pytest.raises(CoherenceError):
            next_state(LineState.MODIFIED, Event.BUS_UPGRADE)

    def test_state_properties(self):
        assert LineState.MODIFIED.dirty and LineState.OWNED.dirty
        assert not LineState.SHARED.dirty
        assert LineState.EXCLUSIVE.writable and not LineState.SHARED.writable
        assert not LineState.INVALID.valid
