"""validate_nest: the structural contract every backend assumes."""
import pytest

from repro.common.types import ElementType
from repro.errors import IRError
from repro.ir import Access, Indirect, Mod, Nest, Op, loop1d, validate_nest


def valid_1d(**kwargs):
    nest = loop1d("ok", [0, 64], 128, 16)
    return nest.with_(**kwargs) if kwargs else nest


class TestValidate:
    def test_accepts_valid_nest(self):
        assert validate_nest(valid_1d()) is not None

    def test_rejects_bad_schedule(self):
        with pytest.raises(IRError, match="schedule"):
            validate_nest(valid_1d(schedule="loopy"))

    def test_rejects_zero_size(self):
        with pytest.raises(IRError, match="positive"):
            validate_nest(valid_1d(sizes=(0,)))

    def test_rejects_shape_mismatch(self):
        bad = valid_1d(inputs=(Access("a", 0, (0, 0), (1, 1)),))
        with pytest.raises(IRError, match="offsets"):
            validate_nest(bad)

    def test_reduction_output_may_be_one_level(self):
        # The fuzz generator emits 1-level reduction outputs even inside
        # multi-dim nests (a single accumulator cell).
        nest = Nest(
            name="red",
            etype=ElementType.F32,
            sizes=(8, 4),
            inputs=(
                Access("a", 0, (0, 0), (1, 8)),
                Access("b", 64, (0, 0), (1, 8)),
            ),
            output=Access("c", 256, (0,), (1,)),
            ops=(),
            reduce="add",
        )
        validate_nest(nest)

    def test_rejects_fma_without_b(self):
        bad = loop1d("k", [0], 64, 8, ops=(Op("fma", "b", 1.0),))
        with pytest.raises(IRError, match="fma"):
            validate_nest(bad)

    def test_rejects_int_unary(self):
        bad = loop1d(
            "k", [0], 64, 8, etype=ElementType.I32, ops=(Op("neg", None),)
        )
        with pytest.raises(IRError, match="float"):
            validate_nest(bad)

    def test_rejects_mac_with_ops(self):
        bad = valid_1d(reduce="add", use_mac=True, ops=(Op("add", "b"),))
        with pytest.raises(IRError, match="use_mac"):
            validate_nest(bad)

    def test_rejects_indirect_on_1d(self):
        bad = valid_1d(indirect=Indirect("a", 4096))
        with pytest.raises(IRError, match="2-dimensional"):
            validate_nest(bad)

    def test_rejects_modifier_at_level_zero(self):
        nest = Nest(
            name="m",
            etype=ElementType.F32,
            sizes=(8, 4),
            inputs=(Access("a", 0, (0, 0), (1, 8)),),
            output=Access("c", 64, (0, 0), (1, 8)),
            ops=(),
            size_mods=(Mod(0, "size", "add", 1, 1),),
        )
        with pytest.raises(IRError, match="level"):
            validate_nest(nest)
