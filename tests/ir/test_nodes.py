"""The loop-nest IR's node layer: construction, derived properties,
and the loop1d convenience constructor."""
import pytest

from repro.common.types import ElementType
from repro.ir import FMA_OP, Access, Mod, Nest, Op, loop1d
from repro.streams.pattern import MemLevel


def nest_2d():
    return Nest(
        name="t",
        etype=ElementType.F32,
        sizes=(8, 4),
        inputs=(Access("a", 0, (0, 0), (1, 8)),),
        output=Access("c", 64, (0, 0), (1, 8)),
        ops=(),
    )


class TestNest:
    def test_derived_properties(self):
        nest = nest_2d()
        assert nest.ndims == 2
        assert nest.is_float
        assert not nest.has_b
        assert [a.name for a in nest.arrays] == ["a", "c"]
        assert nest.array("c").base == 64

    def test_with_replaces_fields(self):
        nest = nest_2d().with_(name="u", schedule="nested")
        assert nest.name == "u"
        assert nest.schedule == "nested"

    def test_mods_for_merges_shared_and_own(self):
        shared = Mod(1, "size", "sub", 1, 3)
        own = Mod(1, "offset", "add", 2, 2)
        nest = nest_2d()
        nest = nest.with_(
            size_mods=(shared,),
            inputs=(
                Access("a", 0, (0, 0), (1, 8), mods=(own,)),
            ),
        )
        assert nest.mods_for(nest.array("a"), 1) == (shared, own)
        assert nest.mods_for(nest.array("c"), 1) == (shared,)


class TestLoop1d:
    def test_byte_addresses_become_element_bases(self):
        nest = loop1d("k", [256, 512], 1024, 100)
        assert [a.base for a in nest.inputs] == [64, 128]
        assert nest.output.base == 256
        assert nest.sizes == (100,)
        assert [a.name for a in nest.arrays] == ["a", "b", "c"]
        assert nest.mem_level is MemLevel.L2

    def test_rejects_misaligned_address(self):
        with pytest.raises(ValueError, match="aligned"):
            loop1d("k", [6], 0, 10)

    def test_rejects_arity(self):
        with pytest.raises(ValueError, match="one or two"):
            loop1d("k", [0, 4, 8], 12, 10)

    def test_fma_op_vocabulary(self):
        nest = loop1d("k", [0, 4], 4, 8, ops=(Op(FMA_OP, "b", 2.5),))
        assert nest.ops[0].op == "fma"
        assert nest.ops[0].imm == 2.5
