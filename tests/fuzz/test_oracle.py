"""Differential-oracle behaviour: clean passes, injections caught."""
import numpy as np
import pytest

from repro.fuzz.generator import generate_spec
from repro.fuzz.lowering import INJECTIONS, ISAS, lower
from repro.fuzz.oracle import clone_memory, run_case
from repro.fuzz.reference import materialize
from repro.memory.backing import Memory


def test_clean_cases_pass():
    for index in range(40):
        spec = generate_spec(5, index)
        report = run_case(spec, check_timing=index % 10 == 0)
        assert report.ok, (spec, [f.to_dict() for f in report.failures])


def test_timing_invariants_checked_when_requested():
    spec = generate_spec(5, 0)
    report = run_case(spec, check_timing=True)
    assert report.timing_checked
    assert run_case(spec).timing_checked is False


def test_every_lowering_produces_a_program():
    spec = generate_spec(5, 1)
    art = materialize(spec)
    for isa in ISAS:
        program = lower(spec, art, isa)
        assert len(program.instructions) > 0


def test_clone_memory_is_independent():
    mem = Memory(size=4096)
    mem.data[100] = 42
    copy = clone_memory(mem)
    copy.data[100] = 7
    assert mem.data[100] == 42
    assert np.array_equal(mem.data[:100], copy.data[:100])


@pytest.mark.parametrize("inject", sorted(INJECTIONS))
def test_injection_is_caught(inject):
    # Each documented distortion of the UVE lowering must be detected
    # within a modest budget of generated cases.
    for index in range(80):
        spec = generate_spec(0, index)
        report = run_case(spec, inject=inject)
        if not report.ok:
            # The bug must show up on the UVE side of the differential.
            assert any("uve" in f.isa for f in report.failures)
            return
    pytest.fail(f"injection {inject!r} survived 80 cases undetected")


def test_unknown_injection_rejected():
    spec = generate_spec(0, 0)
    art = materialize(spec)
    with pytest.raises(ValueError, match="unknown injection"):
        lower(spec, art, "uve", inject="no-such-injection")
