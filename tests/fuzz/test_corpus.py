"""Replay the committed failure corpus (tier-1 regression net).

Two kinds of entry live under ``tests/fuzz/corpus``:

* **Injected** reproducers (``meta["inject"]`` set) prove detection
  power: re-running the oracle with the same deliberate lowering bug
  must still *catch* it.  If one starts passing, the oracle lost a
  capability.
* **Organic** reproducers (no injection) are bug regression guards: the
  bug they captured was fixed, so they must run *clean* forever after.
"""
from pathlib import Path

import pytest

from repro.fuzz.corpus import load_case
from repro.fuzz.lowering import INJECTIONS
from repro.fuzz.oracle import run_case
from repro.fuzz.shrinker import valid

CORPUS_DIR = Path(__file__).parent / "corpus"
FILES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    # The acceptance criteria commit at least the documented
    # injected-bug reproducer; an empty corpus means it was lost.
    assert FILES


@pytest.mark.parametrize("path", FILES, ids=[p.name for p in FILES])
def test_corpus_entry_is_well_formed(path):
    spec, meta = load_case(path)
    assert valid(spec)
    inject = meta.get("inject")
    if inject is not None:
        assert inject in INJECTIONS


@pytest.mark.parametrize("path", FILES, ids=[p.name for p in FILES])
def test_replay(path):
    spec, meta = load_case(path)
    inject = meta.get("inject")
    report = run_case(spec, inject=inject)
    if inject is not None:
        assert not report.ok, (
            f"{path.name}: oracle no longer catches injection {inject!r}"
        )
        assert run_case(spec).ok, (
            f"{path.name}: reproducer fails even without the injection"
        )
    else:
        assert report.ok, (
            f"{path.name}: regressed: "
            f"{[f.to_dict() for f in report.failures]}"
        )


@pytest.mark.parametrize("path", FILES, ids=[p.name for p in FILES])
def test_committed_reproducers_are_small(path):
    spec, _ = load_case(path)
    assert spec.ndims <= 3
