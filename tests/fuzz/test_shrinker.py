"""Shrinker: minimises while preserving failure and well-definedness."""
import pytest

from repro.fuzz.generator import generate_spec
from repro.fuzz.oracle import run_case
from repro.fuzz.shrinker import shrink, valid
from repro.fuzz.spec import ArraySpec, CaseSpec, OpStep


def _simple_spec(**overrides):
    base = CaseSpec(
        seed=1,
        family="elementwise",
        etype="F32",
        vector_bits=256,
        sizes=(8, 4),
        inputs=(
            ArraySpec("a", (0, 0), (1, 8), ()),
            ArraySpec("b", (0, 0), (1, 8), ()),
        ),
        output=ArraySpec("c", (0, 0), (1, 8), ()),
        ops=(OpStep("add", "b"), OpStep("mul", None, 2.0)),
    )
    return base.with_(**overrides)


def test_valid_accepts_generated_specs():
    for index in range(60):
        assert valid(generate_spec(9, index))


def test_valid_rejects_degenerate_specs():
    assert not valid(_simple_spec(sizes=(0, 4)))
    bad_output = ArraySpec("c", (0, 0), (0, 8), ())
    assert not valid(_simple_spec(output=bad_output))


def test_shrink_reaches_synthetic_minimum():
    # Predicate: "dim-0 size is at least 3" — the shrinker should drive
    # everything else to its floor while keeping that size >= 3.
    spec = generate_spec(9, 4)

    def failing(s):
        return s.sizes[0] >= 3

    small = shrink(spec, failing)
    assert failing(small)
    assert small.sizes[0] in (3, 4)  # halving floor, candidates are 1 or //2
    assert all(size == 1 for size in small.sizes[1:])
    assert small.ops == ()


def test_shrink_never_returns_invalid(monkeypatch):
    spec = generate_spec(9, 7)
    seen = []

    def failing(s):
        seen.append(s)
        return True  # everything "fails": maximal shrink pressure

    small = shrink(spec, failing)
    assert valid(small)
    assert all(valid(s) for s in seen)


def test_shrink_respects_eval_budget():
    spec = generate_spec(9, 11)
    calls = []

    def failing(s):
        calls.append(s)
        return False

    shrink(spec, failing, max_evals=17)
    assert len(calls) <= 17


@pytest.mark.parametrize("inject", ["uve-dim0-size-off-by-one"])
def test_shrunk_injected_failure_is_minimal_and_replayable(inject):
    failing_spec = None
    for index in range(60):
        spec = generate_spec(0, index)
        if not run_case(spec, inject=inject).ok:
            failing_spec = spec
            break
    assert failing_spec is not None, "injection not caught in 60 cases"

    small = shrink(
        failing_spec, lambda s: not run_case(s, inject=inject).ok, max_evals=150
    )
    # Replayable: still fails with the injection, passes without it.
    assert not run_case(small, inject=inject).ok
    assert run_case(small).ok
    # Minimal enough for a human: the acceptance bar is <= 3 dims.
    assert small.ndims <= 3
    assert small.sizes[0] * max(1, small.ndims) <= failing_spec.sizes[0] * 64
