"""Campaign orchestration: caching, sharding, corpus writing, CLI."""
from repro.fuzz.__main__ import main
from repro.fuzz.campaign import fuzz_cache, run_campaign


def test_clean_campaign_is_ok_and_counts_timing(tmp_path):
    summary = run_campaign(seed=21, cases=12, timing_every=4, cache=None)
    assert summary.ok
    assert summary.cases == 12
    assert summary.timing_checked == 3  # indices 0, 4, 8
    assert summary.cache_hits == 0


def test_cache_hits_on_rerun(tmp_path):
    cache = fuzz_cache(tmp_path / "cache")
    first = run_campaign(seed=22, cases=10, cache=cache)
    again = run_campaign(seed=22, cases=10, cache=cache)
    assert first.cache_hits == 0
    assert again.cache_hits == 10
    assert again.ok == first.ok


def test_injected_campaign_writes_shrunk_corpus(tmp_path):
    corpus = tmp_path / "corpus"
    summary = run_campaign(
        seed=0,
        cases=40,
        inject="uve-dim0-size-off-by-one",
        timing_every=0,
        corpus_dir=corpus,
        cache=None,
    )
    assert summary.failures, "injection not caught in 40 cases"
    assert summary.shrunk
    written = sorted(corpus.glob("*.json"))
    assert written
    assert summary.corpus_files
    # Shrunk reproducers meet the acceptance bar: <= 3 dimensions.
    assert all(len(s["sizes"]) <= 3 for s in summary.shrunk)


def test_parallel_equals_serial():
    serial = run_campaign(seed=23, cases=8, jobs=1, cache=None)
    parallel = run_campaign(seed=23, cases=8, jobs=2, cache=None)
    assert serial.to_dict() == parallel.to_dict()


def test_cli_clean_run(tmp_path, capsys):
    code = main(
        ["--seed", "24", "--cases", "6", "--no-cache", "--timing-every", "0"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "0 failing case(s)" in out


def test_cli_json_output(tmp_path, capsys):
    import json

    code = main(
        [
            "--seed", "24", "--cases", "4", "--json",
            "--cache-dir", str(tmp_path / "cache"),
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["ok"] is True
    assert payload["cases"] == 4


def test_cli_replay_roundtrip(tmp_path, capsys):
    corpus = tmp_path / "corpus"
    main(
        [
            "--seed", "0", "--cases", "40", "--no-cache", "--timing-every",
            "0", "--inject", "uve-dim0-size-off-by-one", "--corpus",
            str(corpus),
        ]
    )
    capsys.readouterr()
    assert sorted(corpus.glob("*.json"))
    code = main(["--replay", str(corpus)])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 unexpected" in out
