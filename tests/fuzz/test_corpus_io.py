"""Corpus file format: save/load round trip and versioning."""
import json

import pytest

from repro.fuzz.corpus import (
    CORPUS_FORMAT,
    case_filename,
    load_case,
    save_case,
)
from repro.fuzz.generator import generate_spec


def test_save_load_round_trip(tmp_path):
    spec = generate_spec(13, 5)
    meta = {"campaign_seed": 13, "case_index": 5, "inject": None}
    path = tmp_path / case_filename(spec)
    save_case(path, spec, meta)
    loaded, loaded_meta = load_case(path)
    assert loaded == spec
    assert loaded_meta == meta


def test_filename_is_deterministic_and_inject_sensitive():
    spec = generate_spec(13, 6)
    assert case_filename(spec) == case_filename(spec)
    assert case_filename(spec) != case_filename(spec, "uve-mod-extra-count")
    assert case_filename(spec).startswith(spec.family)
    assert case_filename(spec).endswith(".json")


def test_format_mismatch_rejected(tmp_path):
    spec = generate_spec(13, 7)
    path = save_case(tmp_path / "case.json", spec)
    data = json.loads(path.read_text())
    data["format"] = CORPUS_FORMAT + 1
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="corpus format"):
        load_case(path)


def test_files_are_stable_text(tmp_path):
    # sorted keys + trailing newline: diffs stay reviewable in git.
    spec = generate_spec(13, 8)
    path = save_case(tmp_path / "case.json", spec, {"b": 1, "a": 2})
    text = path.read_text()
    assert text.endswith("\n")
    assert text.index('"a"') < text.index('"b"')
