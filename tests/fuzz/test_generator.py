"""Generator determinism, diversity, and spec hygiene."""
from repro.fuzz.generator import generate_spec
from repro.fuzz.reference import materialize
from repro.fuzz.shrinker import valid
from repro.fuzz.spec import CaseSpec

N = 120


def test_deterministic_in_seed_and_index():
    for index in range(20):
        assert generate_spec(7, index) == generate_spec(7, index)
    assert generate_spec(7, 3) != generate_spec(8, 3)


def test_indices_are_independent_of_each_other():
    # Sharding a campaign must not change which cases run: case (s, i)
    # is a pure function of its coordinates, not of iteration history.
    forward = [generate_spec(11, i) for i in range(10)]
    backward = [generate_spec(11, i) for i in reversed(range(10))]
    assert forward == list(reversed(backward))


def test_spec_dict_round_trip():
    for index in range(30):
        spec = generate_spec(1, index)
        assert CaseSpec.from_dict(spec.to_dict()) == spec


def test_specs_are_valid_and_bounded():
    for index in range(N):
        spec = generate_spec(2, index, max_elems=512)
        assert valid(spec), spec
        art = materialize(spec)
        assert art.total <= 512


def test_diversity():
    specs = [generate_spec(3, index) for index in range(N)]
    families = {s.family for s in specs}
    assert len(families) >= 4
    assert {s.etype for s in specs} >= {"F32", "F64", "I32"}
    assert {s.vector_bits for s in specs} == {128, 256, 512}
    assert any(s.ndims >= 3 for s in specs)
    assert any(s.indirect is not None for s in specs)
    assert any(s.size_mods for s in specs)
    assert any(a.mods for s in specs for a in s.arrays)


def test_reference_matches_dtype():
    for index in range(20):
        spec = generate_spec(4, index)
        art = materialize(spec)
        assert art.ref_c.dtype == spec.element_type.dtype
