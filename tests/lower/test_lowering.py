"""The lowering driver layer: backend dispatch, streamlined-shape
eligibility, label namespacing, and backend capability errors."""
import pytest

from repro.errors import LoweringError
from repro.ir import FMA_OP, Mod, Op, loop1d
from repro.isa.scalar_ops import Halt
from repro.lower import BACKENDS, INJECTIONS, ISAS, lower, lower_nests
from repro.lower.common import streamlined


def saxpy_nest(name="saxpy"):
    return loop1d("%s" % name, [0, 64], 64, 32,
                  ops=(Op(FMA_OP, "b", 2.5),))


class TestDriver:
    def test_every_backend_halts(self):
        nest = saxpy_nest()
        for isa in BACKENDS:
            program = lower(nest, isa)
            assert isinstance(program.instructions[-1], Halt), isa

    def test_oracle_isas_are_a_backend_subset(self):
        assert set(ISAS) <= set(BACKENDS)
        assert "rvv" not in ISAS

    def test_unknown_isa(self):
        with pytest.raises(ValueError, match="unknown isa"):
            lower(saxpy_nest(), "avx512")

    def test_unknown_injection(self):
        with pytest.raises(ValueError, match="unknown injection"):
            lower(saxpy_nest(), "uve", inject="uve-bogus")

    def test_injections_are_uve_only(self):
        inject = sorted(INJECTIONS)[0]
        with pytest.raises(ValueError, match="uve"):
            lower(saxpy_nest(), "sve", inject=inject)

    def test_lower_nests_requires_a_nest(self):
        with pytest.raises(ValueError, match="at least one"):
            lower_nests([], "uve", "empty")

    def test_multi_nest_labels_are_namespaced(self):
        nests = (saxpy_nest("first"), saxpy_nest("second"))
        program = lower_nests(nests, "neon", "pair")
        assert any(label.startswith("first_") for label in program.labels)
        assert any(label.startswith("second_") for label in program.labels)

    def test_single_nest_labels_are_bare(self):
        program = lower_nests((saxpy_nest(),), "neon", "solo")
        assert program.labels
        assert not any(label.startswith("saxpy_")
                       for label in program.labels)


class TestStreamlined:
    def test_kernel_shapes_qualify(self):
        assert streamlined(saxpy_nest())
        assert streamlined(loop1d("copy", [0], 64, 32))

    def test_pinned_schedule_disqualifies(self):
        assert not streamlined(saxpy_nest().with_(schedule="nested"))

    def test_modifiers_disqualify(self):
        nest = loop1d("k", [0], 64, 32)
        assert not streamlined(
            nest.with_(size_mods=(Mod(1, "size", "add", 1, 1),))
        )

    def test_two_fmas_disqualify(self):
        nest = saxpy_nest()
        assert not streamlined(
            nest.with_(ops=nest.ops + (Op(FMA_OP, "b", 1.0),))
        )


class TestRvvBackend:
    def test_rejects_general_nest(self):
        pinned = saxpy_nest().with_(schedule="nested")
        with pytest.raises(LoweringError, match="streamlined"):
            lower(pinned, "rvv")

    def test_lowers_kernel_shapes(self):
        program = lower(saxpy_nest(), "rvv")
        assert program.instructions
