"""Round-trip tests for the UVE binary encoding."""
import pytest

from repro.common.types import ElementType
from repro.errors import EncodingError
from repro.isa import f, u, x
from repro.isa import uve_ops as uve
from repro.isa.encoding import decode, encode, isa_catalog
from repro.streams.descriptor import IndirectBehavior, Param, StaticBehavior
from repro.streams.pattern import Direction, MemLevel

F32 = ElementType.F32
F64 = ElementType.F64


def roundtrip(inst):
    word = encode(inst)
    assert 0 <= word < (1 << 32)
    return decode(word, label=getattr(inst, "label", "target"))


CASES = [
    uve.SsConfig1D(u(3), Direction.LOAD, x(1), x(2), x(4), etype=F32),
    uve.SsConfig1D(u(3), Direction.STORE, x(1), x(2), x(4), etype=F64,
                   mem_level=MemLevel.MEM),
    uve.SsConfig1D(u(31), Direction.LOAD, x(31), x(30), x(29),
                   etype=ElementType.I8, mem_level=MemLevel.L1),
    uve.SsSta(u(7), Direction.LOAD, x(5), x(6), x(7), etype=F32),
    uve.SsSta(u(7), Direction.STORE, x(5), x(6), x(7), etype=F64,
              mem_level=MemLevel.L1),
    uve.SsApp(u(2), x(8), x(9), x(10)),
    uve.SsApp(u(2), x(8), x(9), x(10), last=True),
    uve.SsAppMod(u(4), Param.SIZE, StaticBehavior.ADD, x(1), x(2)),
    uve.SsAppMod(u(4), Param.OFFSET, StaticBehavior.SUB, x(1), x(2), last=True),
    uve.SsAppInd(u(5), Param.OFFSET, IndirectBehavior.SET_ADD, u(9)),
    uve.SsAppInd(u(5), Param.STRIDE, IndirectBehavior.SET_VALUE, u(9),
                 last=True),
    uve.SsCtl("suspend", u(11)),
    uve.SsCtl("resume", u(11)),
    uve.SsCtl("stop", u(11)),
    uve.SoOp("add", u(1), u(2), u(3), etype=F32),
    uve.SoOp("max", u(1), u(2), u(3), etype=F64),
    uve.SoMac(u(6), u(7), u(8), etype=F32),
    uve.SoMove(u(9), u(10), etype=F32),
    uve.SoDup(u(12), f(3), etype=F32),
    uve.SoDup(u(12), x(3), etype=F32),
    uve.SoRed("max", u(13), u(14), etype=F32),
    uve.SoRed("add", u(13), u(14), etype=F64),
]


@pytest.mark.parametrize("inst", CASES, ids=lambda i: str(i))
def test_roundtrip(inst):
    assert roundtrip(inst) == inst


class TestBranches:
    def test_branch_end_roundtrip(self):
        inst = uve.SoBranchEnd(u(4), "loop", negate=True)
        got = decode(encode(inst), label="loop")
        assert got == inst

    def test_branch_dim_roundtrip(self):
        inst = uve.SoBranchDim(u(4), 3, "loop", complete=False)
        got = decode(encode(inst), label="loop")
        assert got == inst


class TestErrors:
    def test_immediate_operands_rejected(self):
        inst = uve.SsConfig1D(u(0), Direction.LOAD, 100, 64, 1)
        with pytest.raises(EncodingError, match="pseudo"):
            encode(inst)

    def test_unknown_class_rejected(self):
        with pytest.raises(EncodingError, match="opcode class"):
            decode(0x7F)

    def test_oversized_word_rejected(self):
        with pytest.raises(EncodingError):
            decode(1 << 33)

    def test_unencodable_instruction(self):
        from repro.isa import scalar_ops as sc
        with pytest.raises(EncodingError, match="no binary encoding"):
            encode(sc.Halt())


class TestCatalog:
    def test_catalog_covers_many_variants(self):
        catalog = isa_catalog()
        assert sum(catalog.values()) >= 100  # spec expands into hundreds

    def test_distinct_words_for_distinct_instructions(self):
        words = [encode(inst) for inst in CASES]
        assert len(set(words)) == len(words)
