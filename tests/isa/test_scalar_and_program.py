"""Unit tests for scalar-op semantics and Program/ProgramBuilder."""
import numpy as np
import pytest

from repro.common.types import ElementType
from repro.errors import IsaError
from repro.isa import Program, ProgramBuilder, f, x
from repro.isa import scalar_ops as sc
from repro.memory.backing import Memory
from repro.sim.functional import FunctionalSimulator, MachineState


def run_insts(*insts, memory=None):
    b = ProgramBuilder("t")
    b.emit(*insts, sc.Halt())
    sim = FunctionalSimulator(b.build(), memory=memory)
    sim.run()
    return sim.state


class TestScalarSemantics:
    def test_int_ops(self):
        state = run_insts(
            sc.Li(x(1), 7),
            sc.IntOp("add", x(2), x(1), 5),
            sc.IntOp("sub", x(3), x(2), x(1)),
            sc.IntOp("mul", x(4), x(3), 3),
            sc.IntOp("sll", x(5), x(1), 2),
            sc.IntOp("div", x(6), x(1), 2),
        )
        assert state.read_x(x(2)) == 12
        assert state.read_x(x(3)) == 5
        assert state.read_x(x(4)) == 15
        assert state.read_x(x(5)) == 28
        assert state.read_x(x(6)) == 3

    def test_div_by_zero_yields_zero(self):
        state = run_insts(sc.Li(x(1), 7), sc.IntOp("div", x(2), x(1), 0))
        assert state.read_x(x(2)) == 0

    def test_x0_hardwired_zero(self):
        state = run_insts(sc.Li(x(0), 99), sc.IntOp("add", x(1), x(0), 1))
        assert state.read_x(x(0)) == 0
        assert state.read_x(x(1)) == 1

    def test_fp_ops_and_fmac(self):
        state = run_insts(
            sc.FLi(f(1), 1.5),
            sc.FOp("mul", f(2), f(1), 4.0),
            sc.FMac(f(2), f(1), f(1)),
            sc.FUnary("sqrt", f(3), f(2)),
        )
        assert state.read_f(f(2)) == pytest.approx(6.0 + 2.25)
        assert state.read_f(f(3)) == pytest.approx(np.sqrt(8.25))

    def test_move_converts_between_banks(self):
        state = run_insts(sc.FLi(f(1), 3.9), sc.Move(x(1), f(1)))
        assert state.read_x(x(1)) == 3
        state = run_insts(sc.Li(x(1), 4), sc.Move(f(1), x(1)))
        assert state.read_f(f(1)) == 4.0

    def test_load_store_widths(self):
        mem = Memory(1 << 16)
        addr = mem.alloc(64)
        state = run_insts(
            sc.Li(x(1), addr),
            sc.Li(x(2), -5),
            sc.Store(x(2), x(1), 0, etype=ElementType.I32),
            sc.Load(x(3), x(1), 0, etype=ElementType.I32),
            memory=mem,
        )
        assert state.read_x(x(3)) == -5

    def test_float_branch_compare(self):
        b = ProgramBuilder("fb")
        b.emit(
            sc.FLi(f(1), 2.0),
            sc.Li(x(1), 0),
            sc.BranchCmp("gt", f(1), 1.0, "skip"),
            sc.Li(x(1), 111),
        )
        b.label("skip")
        b.emit(sc.Halt())
        sim = FunctionalSimulator(b.build())
        sim.run()
        assert sim.state.read_x(x(1)) == 0


class TestProgram:
    def test_duplicate_label_rejected(self):
        b = ProgramBuilder("dup")
        b.label("a")
        with pytest.raises(IsaError, match="duplicate"):
            b.label("a")

    def test_non_instruction_rejected(self):
        b = ProgramBuilder("bad")
        with pytest.raises(IsaError, match="not an instruction"):
            b.emit("nop")

    def test_undefined_branch_target_rejected_at_build(self):
        b = ProgramBuilder("undef")
        b.emit(sc.Jump("nowhere"))
        with pytest.raises(IsaError, match="undefined label"):
            b.build()

    def test_label_at_end_is_valid(self):
        b = ProgramBuilder("end")
        b.emit(sc.BranchCmp("eq", x(1), 0, "done"), sc.Li(x(2), 1))
        b.label("done")
        b.emit(sc.Halt())
        program = b.build()
        assert program.target("done") == 2

    def test_listing_shows_labels_and_instructions(self):
        b = ProgramBuilder("list")
        b.label("start")
        b.emit(sc.Li(x(1), 3), sc.Halt())
        text = b.build().listing()
        assert "start:" in text
        assert "li x1, 3" in text

    def test_len(self):
        b = ProgramBuilder("len")
        b.emit(sc.Nop(), sc.Nop(), sc.Halt())
        assert len(b.build()) == 3


class TestSimulatorDeterminism:
    def test_two_pass_replay_is_identical(self):
        """The Simulator's snapshot/restore makes pass 2 replay pass 1
        exactly, even for in-place kernels with data-dependent branches."""
        from repro.cpu.config import uve_machine
        from repro.kernels import get_kernel
        from repro.sim.simulator import Simulator

        kernel = get_kernel("floyd-warshall")  # in-place, data-dependent
        wl = kernel.workload(scale=0.3)
        program = kernel.build("uve", wl)
        result = Simulator(program, wl.memory, uve_machine()).run()
        wl.verify()
        assert result.committed == result.summary.committed

    def test_max_steps_guard(self):
        from repro.errors import ExecutionError
        b = ProgramBuilder("inf")
        b.label("loop")
        b.emit(sc.Jump("loop"))
        sim = FunctionalSimulator(b.build(), max_steps=100)
        with pytest.raises(ExecutionError, match="exceeded"):
            sim.run()
