"""Unit tests for the register model and name parsing."""
import pytest

from repro.errors import IsaError
from repro.isa.registers import P0, Reg, RegClass, f, p, parse_reg, u, x


class TestConstruction:
    def test_banks_and_limits(self):
        assert x(31).cls is RegClass.X
        assert f(31).cls is RegClass.F
        assert u(31).cls is RegClass.V
        assert p(15).cls is RegClass.P

    def test_out_of_range_rejected(self):
        with pytest.raises(IsaError):
            x(32)
        with pytest.raises(IsaError):
            p(16)
        with pytest.raises(IsaError):
            u(-1)

    def test_p0_is_predicate_zero(self):
        assert P0 == p(0)

    def test_str(self):
        assert str(u(7)) == "u7"
        assert str(x(0)) == "x0"


class TestEqualityHash:
    def test_equal_same_bank_index(self):
        assert u(3) == u(3)
        assert hash(u(3)) == hash(u(3))

    def test_distinct_banks_not_equal(self):
        assert x(3) != u(3)
        assert f(3) != x(3)

    def test_usable_as_dict_key(self):
        table = {u(1): "a", x(1): "b"}
        assert table[u(1)] == "a"
        assert table[x(1)] == "b"

    def test_non_reg_comparison(self):
        assert u(1) != "u1"


class TestParsing:
    def test_basic_names(self):
        assert parse_reg("u5") == u(5)
        assert parse_reg("x12") == x(12)
        assert parse_reg("f3") == f(3)
        assert parse_reg("p2") == p(2)

    def test_case_and_whitespace(self):
        assert parse_reg(" U5 ") == u(5)

    def test_riscv_abi_aliases(self):
        assert parse_reg("a0") == x(10)
        assert parse_reg("a3") == x(13)
        assert parse_reg("fa0") == f(10)
        assert parse_reg("t1") == x(6)

    def test_sve_style_names(self):
        assert parse_reg("z4") == u(4)  # SVE z-registers map to the
        assert parse_reg("v4") == u(4)  # same vector bank as NEON v

    def test_malformed_rejected(self):
        for bad in ("", "q3", "u", "xx", "u3a"):
            with pytest.raises(IsaError):
                parse_reg(bad)
