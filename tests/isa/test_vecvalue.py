"""Unit tests for VecValue helpers and the SlotReservoir internals."""
import numpy as np

from repro.common.types import ElementType
from repro.isa.vector import VecValue, from_list, full, zeros
from repro.memory.slots import SlotReservoir

F32 = ElementType.F32


class TestVecValue:
    def test_zeros_all_invalid(self):
        v = zeros(8, F32)
        assert v.lanes == 8
        assert v.valid_count == 0
        assert not v.data.any()

    def test_full_all_valid(self):
        v = full(8, F32, 2.5)
        assert v.valid_count == 8
        np.testing.assert_array_equal(v.data, [2.5] * 8)

    def test_from_list_partial(self):
        v = from_list([1, 2, 3], F32, 8)
        assert v.valid_count == 3
        np.testing.assert_array_equal(v.active(), [1.0, 2.0, 3.0])
        assert not v.valid[3:].any()

    def test_dtype_follows_etype(self):
        v = full(4, ElementType.I64, 7)
        assert v.data.dtype == np.int64


class TestSlotReservoirPruning:
    def test_ledger_is_pruned(self):
        res = SlotReservoir(1, 1.0)
        for i in range(20_000):
            res.reserve(float(i * 10))
        # Old slots were dropped; the ledger stays bounded.
        assert len(res._busy) < 20_000

    def test_occupancy_introspection(self):
        res = SlotReservoir(2, 1.0)
        res.reserve(5.0)
        res.reserve(5.0)
        assert res.occupancy(5.0) == 2
        assert res.occupancy(6.0) == 0

    def test_rejects_bad_parameters(self):
        import pytest
        with pytest.raises(ValueError):
            SlotReservoir(0, 1.0)
        with pytest.raises(ValueError):
            SlotReservoir(1, 0.0)
