"""Unit tests for the shared element-wise semantic layer."""
import numpy as np
import pytest

from repro.errors import IsaError
from repro.isa import semantics
from repro.isa.microop import OpClass


class TestOperatorTables:
    def test_binary_ops(self):
        a = np.array([1.0, 2.0, -3.0], dtype=np.float32)
        b = np.array([4.0, -5.0, 6.0], dtype=np.float32)
        np.testing.assert_array_equal(semantics.binary("add")(a, b), a + b)
        np.testing.assert_array_equal(semantics.binary("min")(a, b),
                                      np.minimum(a, b))
        np.testing.assert_array_equal(semantics.binary("max")(a, b),
                                      np.maximum(a, b))

    def test_integer_bitwise(self):
        a = np.array([0b1100], dtype=np.int32)
        b = np.array([0b1010], dtype=np.int32)
        assert semantics.binary("and")(a, b)[0] == 0b1000
        assert semantics.binary("or")(a, b)[0] == 0b1110
        assert semantics.binary("xor")(a, b)[0] == 0b0110
        assert semantics.binary("sll")(a, np.array([1]))[0] == 0b11000

    def test_unary_ops(self):
        a = np.array([4.0, 9.0], dtype=np.float32)
        np.testing.assert_array_equal(semantics.unary("sqrt")(a),
                                      np.sqrt(a))
        np.testing.assert_array_equal(semantics.unary("neg")(a), -a)
        np.testing.assert_array_equal(semantics.unary("mov")(a), a)

    def test_reductions(self):
        a = np.array([3.0, 1.0, 2.0])
        assert semantics.reduce_fn("add")(a) == 6.0
        assert semantics.reduce_fn("min")(a) == 1.0
        assert semantics.reduce_fn("max")(a) == 3.0
        assert semantics.reduce_fn("mul")(a) == 6.0

    def test_comparisons(self):
        a = np.array([1, 2, 3])
        b = np.array([2, 2, 2])
        np.testing.assert_array_equal(
            semantics.compare("lt")(a, b), [True, False, False]
        )
        np.testing.assert_array_equal(
            semantics.compare("ge")(a, b), [False, True, True]
        )

    def test_unknown_operators_rejected(self):
        for fn in (semantics.binary, semantics.unary,
                   semantics.reduce_fn, semantics.compare):
            with pytest.raises(IsaError):
                fn("frobnicate")


class TestOpClassMapping:
    def test_vector_classes(self):
        assert semantics.vector_opclass("add") is OpClass.VEC_ALU
        assert semantics.vector_opclass("mul") is OpClass.VEC_MUL
        assert semantics.vector_opclass("div") is OpClass.VEC_DIV

    def test_scalar_classes(self):
        assert semantics.scalar_fp_opclass("add") is OpClass.FP_ALU
        assert semantics.scalar_fp_opclass("mul") is OpClass.FP_MUL
        assert semantics.scalar_int_opclass("mul") is OpClass.INT_MUL
        assert semantics.scalar_int_opclass("add") is OpClass.INT_ALU

    def test_cluster_routing(self):
        from repro.isa.microop import FuCluster
        assert OpClass.VEC_MAC.cluster is FuCluster.FP
        assert OpClass.LOAD.cluster is FuCluster.MEM
        assert OpClass.BRANCH.cluster is FuCluster.INT
        assert OpClass.STREAM_CFG.cluster is FuCluster.NONE

    def test_mem_flags(self):
        assert OpClass.GATHER.is_load and OpClass.GATHER.is_mem
        assert OpClass.SCATTER.is_store
        assert not OpClass.VEC_ALU.is_mem
        assert OpClass.VEC_LOAD.is_vector
