"""Round-trip identity for the fuzz instruction pool.

Two loops close here: binary (``encode`` → 32-bit word → ``decode`` →
equal instruction) and textual (``str(inst)`` → ``assemble`` → equal
instruction).  The pools in :mod:`repro.fuzz.pool` enumerate every
round-trippable form the fuzzer's UVE lowering emits.
"""
import pytest

from repro.errors import EncodingError
from repro.fuzz.pool import (
    WIDTH_FAITHFUL_ETYPES,
    asm_pool,
    encodable_pool,
)
from repro.isa import uve_ops as uve
from repro.isa.assembler import assemble
from repro.isa.encoding import decode, encode, isa_catalog
from repro.isa.registers import u, x
from repro.streams.pattern import Direction

ENCODABLE = encodable_pool()
ASM = asm_pool()


def _ids(pool):
    return [f"{i:03d}-{type(inst).__name__}" for i, inst in enumerate(pool)]


@pytest.mark.parametrize("inst", ENCODABLE, ids=_ids(ENCODABLE))
def test_encode_decode_identity(inst):
    word = encode(inst)
    assert 0 <= word < 2**32
    label = inst.label_target or "target"
    assert decode(word, label=label) == inst


def test_encoded_words_are_distinct():
    words = [encode(inst) for inst in ENCODABLE]
    assert len(set(words)) == len(words)


@pytest.mark.parametrize("inst", ASM, ids=_ids(ASM))
def test_assemble_str_identity(inst):
    program = assemble(str(inst))
    assert len(program.instructions) == 1
    assert program.instructions[0] == inst


def test_assemble_encode_decode_disassemble_identity():
    """The full loop: text -> instruction -> word -> instruction -> text."""
    for inst in ASM:
        try:
            word = encode(inst)
        except EncodingError:
            continue  # immediate-form pseudo-instruction: no binary form
        again = decode(word, label=inst.label_target or "target")
        assert str(again) == str(inst)
        assert assemble(str(again)).instructions[0] == inst


def test_branches_round_trip_from_source():
    # Branch text prints ``.label``, which the assembler keeps opaque —
    # so branches round-trip from explicit source instead of str().
    program = assemble(
        """
        loop:
            so.a.add.fp u2, u0, u1
            so.b.nend   u0, loop
            so.b.end    u1, loop
            so.b.dim1c  u0, loop
            so.b.dim2nc u0, loop
        """
    )
    _, nend, end, dimc, dimnc = program.instructions
    assert nend == uve.SoBranchEnd(u(0), "loop", negate=True)
    assert end == uve.SoBranchEnd(u(1), "loop", negate=False)
    assert dimc == uve.SoBranchDim(u(0), 1, "loop", complete=True)
    assert dimnc == uve.SoBranchDim(u(0), 2, "loop", complete=False)
    for inst in (nend, end, dimc, dimnc):
        assert decode(encode(inst), label="loop") == inst


def test_width_codes_cover_faithful_etypes():
    for etype in WIDTH_FAITHFUL_ETYPES:
        inst = uve.SsConfig1D(
            u(0), Direction.LOAD, x(1), x(2), x(3), etype=etype
        )
        assert decode(encode(inst)).etype == etype


def test_immediate_forms_raise():
    with pytest.raises(EncodingError):
        encode(uve.SsConfig1D(u(0), Direction.LOAD, 1024, 64, 1))


def test_pool_covers_every_encoder():
    # Every class the encoder knows appears in the pool at least once,
    # so new instructions must join the round-trip net.
    from repro.isa import encoding

    covered = {type(inst) for inst in ENCODABLE}
    missing = set(encoding._ENCODERS) - covered
    assert not missing, (
        f"pool misses encodable classes: {sorted(c.__name__ for c in missing)}"
    )


def test_catalog_matches_paper_scale():
    # Paper §III-B: ~450 instruction variants across the families.
    assert sum(isa_catalog().values()) > 100
