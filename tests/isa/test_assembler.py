"""Unit tests for the UVE text assembler."""
import numpy as np
import pytest

from repro.errors import AssemblerError, IsaError
from repro.isa import uve_ops as uve
from repro.isa import scalar_ops as sc
from repro.isa.assembler import assemble
from repro.memory.backing import Memory
from repro.sim.functional import FunctionalSimulator

SAXPY = """
; paper Fig. 4 -- y = a*x + y
    ss.ld.w     u0, {x}, {n}, 1
    ss.ld.w     u1, {y}, {n}, 1
    ss.st.w     u2, {y}, {n}, 1
    fli         f0, 2.5
    so.v.dup.fw u3, f0
loop:
    so.a.mul.fp u4, u3, u0
    so.a.add.fp u2, u4, u1
    so.b.nend   u0, loop
    halt
"""


class TestAssembleSaxpy:
    def test_runs_and_matches_numpy(self):
        n = 100
        rng = np.random.default_rng(0)
        xs = rng.standard_normal(n).astype(np.float32)
        ys = rng.standard_normal(n).astype(np.float32)
        mem = Memory(1 << 20)
        xa, ya = mem.alloc_array(xs), mem.alloc_array(ys)
        program = assemble(SAXPY.format(x=xa // 4, y=ya // 4, n=n))
        FunctionalSimulator(program, memory=mem).run()
        np.testing.assert_allclose(
            mem.ndarray(ya, (n,), np.float32), 2.5 * xs + ys, rtol=1e-6
        )

    def test_instruction_classes(self):
        program = assemble(SAXPY.format(x=0, y=0, n=16))
        kinds = [type(i).__name__ for i in program.instructions]
        assert kinds == [
            "SsConfig1D", "SsConfig1D", "SsConfig1D", "FLi", "SoDup",
            "SoOp", "SoOp", "SoBranchEnd", "Halt",
        ]

    def test_labels_resolved(self):
        program = assemble(SAXPY.format(x=0, y=0, n=16))
        assert program.labels["loop"] == 5


class TestMnemonics:
    def _one(self, text):
        # Wrap in a label-free single line and return the instruction.
        program = assemble(text + "\n halt")
        return program.instructions[0]

    def test_stream_start_and_append(self):
        inst = self._one("ss.ld.sta.w u0, 0, 8, 1")
        assert isinstance(inst, uve.SsSta)
        inst = self._one("ss.app u0, 0, 4, 16")
        assert isinstance(inst, uve.SsApp) and not inst.last
        inst = self._one("ss.end u0, 0, 4, 16")
        assert isinstance(inst, uve.SsApp) and inst.last

    def test_static_modifier(self):
        inst = self._one("ss.end.mod u0, size, add, 1, 7")
        assert isinstance(inst, uve.SsAppMod)
        assert inst.displacement == 1 and inst.count == 7 and inst.last

    def test_indirect_modifier(self):
        inst = self._one("ss.end.ind u0, offset, set-add, u3")
        assert isinstance(inst, uve.SsAppInd)

    def test_mem_level_suffix(self):
        from repro.streams.pattern import MemLevel
        inst = self._one("ss.ld.w.mem3 u0, 0, 8, 1")
        assert inst.mem_level is MemLevel.MEM

    def test_width_suffixes(self):
        from repro.common.types import ElementType
        assert self._one("ss.ld.d u0, 0, 8, 1").etype is ElementType.F64
        assert self._one("ss.ld.iw u0, 0, 8, 1").etype is ElementType.I32
        assert self._one("ss.ld.id u0, 0, 8, 1").etype is ElementType.I64

    def test_control(self):
        assert isinstance(self._one("ss.suspend u5"), uve.SsCtl)
        assert isinstance(self._one("ss.stop u5"), uve.SsCtl)
        assert isinstance(self._one("ss.getvl x5"), uve.SoGetVl)
        assert isinstance(self._one("ss.setvl x5, 8"), uve.SoSetVl)

    def test_reductions_and_branches(self):
        assert isinstance(self._one("so.r.max u1, u5"), uve.SoRed)
        assert isinstance(self._one("so.r.add.sc f1, u5"), uve.SoRedScalar)
        b = self._one("so.b.dim0c u0, done\ndone:")
        assert isinstance(b, uve.SoBranchDim) and b.complete and b.dim == 0
        b = self._one("so.b.dim1nc u0, done\ndone:")
        assert not b.complete and b.dim == 1

    def test_scalar_stream_interface(self):
        assert isinstance(self._one("so.v.tosc f1, u3"), uve.SoScalarRead)
        assert isinstance(self._one("so.v.fromsc u3, f1"), uve.SoScalarWrite)

    def test_mac_variants(self):
        assert isinstance(self._one("so.a.mac.fp u5, u0, u1"), uve.SoMac)
        assert isinstance(self._one("so.a.mac.sc u5, u0, f1"), uve.SoMacScalar)
        assert isinstance(self._one("so.a.sqrt.fp u5, u0"), uve.SoUnary)

    def test_predicates(self):
        assert isinstance(self._one("so.p.lt p1, u0, u1"), uve.SoPredComp)
        assert isinstance(self._one("so.p.not p2, p1"), uve.SoPredNot)

    def test_scalar_base(self):
        assert isinstance(self._one("li x5, 42"), sc.Li)
        assert isinstance(self._one("add x5, x5, 1"), sc.IntOp)
        assert isinstance(self._one("bnez x5, out\nout:"), sc.BranchCmp)

    def test_comments_and_blanks(self):
        program = assemble("# comment only\n\n ; another\n halt\n")
        assert len(program) == 1


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate u0, u1")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("halt\nbogus x0\n")

    def test_undefined_label_rejected(self):
        with pytest.raises(IsaError, match="undefined label"):
            assemble("so.b.nend u0, nowhere")

    def test_bad_modifier_target(self):
        with pytest.raises(AssemblerError, match="bad modifier"):
            assemble("ss.end.mod u0, sizes, add, 1, 7")

    def test_bad_width(self):
        with pytest.raises(AssemblerError, match="suffix"):
            assemble("ss.ld.q u0, 0, 8, 1")
