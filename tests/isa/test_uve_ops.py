"""Unit tests for UVE instruction semantics (streaming compute, branches,
reductions, predication) against hand-built machine states."""
import numpy as np
import pytest

from repro.common.types import ElementType
from repro.errors import IsaError
from repro.isa import f, p, u, x
from repro.isa import uve_ops as uve
from repro.isa.vector import from_list, full
from repro.memory.backing import Memory
from repro.sim.functional import MachineState
from repro.streams.pattern import Direction, MemLevel

F32 = ElementType.F32


def state_with_stream(values, index=0, direction=Direction.LOAD):
    mem = Memory(1 << 20)
    arr = np.asarray(values, dtype=np.float32)
    addr = mem.alloc_array(arr)
    state = MachineState(memory=mem)
    state.stream_begin(index, direction, F32, MemLevel.L2)
    state.stream_dim(index, addr // 4, len(arr), 1)
    state.stream_finish(index)
    return state, addr


class TestSoOp:
    def test_consumes_stream_once_per_instruction(self):
        state, _ = state_with_stream(np.arange(32))
        state.write_v(u(3), full(16, F32, 10.0), F32)
        uve.SoOp("add", u(4), u(3), u(0), etype=F32).execute(state)
        got = state.read_v(u(4), F32)
        np.testing.assert_array_equal(got.data, 10.0 + np.arange(16))
        # Second op consumes the next chunk.
        uve.SoOp("add", u(4), u(3), u(0), etype=F32).execute(state)
        got = state.read_v(u(4), F32)
        np.testing.assert_array_equal(got.data, 10.0 + np.arange(16, 32))

    def test_same_stream_twice_consumes_once(self):
        state, _ = state_with_stream(np.arange(16))
        uve.SoOp("add", u(4), u(0), u(0), etype=F32).execute(state)
        got = state.read_v(u(4), F32)
        np.testing.assert_array_equal(got.data, 2.0 * np.arange(16))
        assert state.stream_ended(0)

    def test_padding_lanes_merge(self):
        # 5-element stream vs a full register: the padded lanes pass the
        # full register's values through (engine-disabled lanes act as a
        # false predicate).
        state, _ = state_with_stream(np.arange(5))
        state.write_v(u(3), full(16, F32, 50.0), F32)
        uve.SoOp("max", u(4), u(3), u(0), etype=F32).execute(state)
        got = state.read_v(u(4), F32)
        np.testing.assert_array_equal(got.data[:5], [50.0] * 5)
        np.testing.assert_array_equal(got.data[5:], [50.0] * 11)
        assert got.valid.all()

    def test_register_interface_updated_on_consume(self):
        # Reading a stream loads the data into the register itself.
        state, _ = state_with_stream(np.arange(16))
        state.write_v(u(3), full(16, F32, 0.0), F32)
        uve.SoOp("add", u(4), u(3), u(0), etype=F32).execute(state)
        reg = state.read_v(u(0), F32)
        np.testing.assert_array_equal(reg.data, np.arange(16))


class TestSoMac:
    def test_accumulates(self):
        state, _ = state_with_stream(np.arange(16))
        state.write_v(u(5), full(16, F32, 1.0), F32)
        state.write_v(u(3), full(16, F32, 2.0), F32)
        uve.SoMac(u(5), u(3), u(0), etype=F32).execute(state)
        got = state.read_v(u(5), F32)
        np.testing.assert_array_equal(got.data, 1.0 + 2.0 * np.arange(16))

    def test_stream_destination_rejected(self):
        state, _ = state_with_stream(np.zeros(16), direction=Direction.STORE)
        with pytest.raises(IsaError, match="read and write"):
            uve.SoMac(u(0), u(1), u(2), etype=F32).execute(state)

    def test_mac_scalar(self):
        state, _ = state_with_stream(np.arange(16))
        state.write_v(u(5), full(16, F32, 1.0), F32)
        state.write_f(f(1), 3.0)
        uve.SoMacScalar(u(5), u(0), f(1), etype=F32).execute(state)
        got = state.read_v(u(5), F32)
        np.testing.assert_array_equal(got.data, 1.0 + 3.0 * np.arange(16))


class TestReductionsAndScalarInterface:
    def test_red_to_output_stream_writes_one_element(self):
        state, addr = state_with_stream(
            np.zeros(4), index=1, direction=Direction.STORE
        )
        state.write_v(u(5), from_list([3.0, 9.0, 1.0], F32, 16), F32)
        uve.SoRed("max", u(1), u(5), etype=F32).execute(state)
        assert state.mem.read_scalar(addr, F32) == 9.0

    def test_red_to_register_writes_lane_zero(self):
        state, _ = state_with_stream(np.arange(16))
        state.write_v(u(5), from_list([3.0, 9.0, 1.0], F32, 16), F32)
        uve.SoRed("add", u(6), u(5), etype=F32).execute(state)
        got = state.read_v(u(6), F32)
        assert got.data[0] == 13.0
        assert got.valid[0] and not got.valid[1:].any()

    def test_red_scalar_register(self):
        state, _ = state_with_stream(np.arange(16))
        uve.SoRedScalar("add", f(2), u(0), etype=F32).execute(state)
        assert state.read_f(f(2)) == sum(range(16))

    def test_unary_sqrt_on_stream(self):
        state, _ = state_with_stream([4.0, 9.0, 16.0])
        uve.SoUnary("sqrt", u(5), u(0), etype=F32).execute(state)
        got = state.read_v(u(5), F32)
        np.testing.assert_allclose(got.data[:3], [2.0, 3.0, 4.0])


class TestBranches:
    def test_nend_until_stream_end(self):
        state, _ = state_with_stream(np.arange(32))
        branch = uve.SoBranchEnd(u(0), "loop", negate=True)
        state.read_operand(u(0), F32)
        assert branch.execute(state) == "loop"
        state.read_operand(u(0), F32)
        assert branch.execute(state) is None  # ended

    def test_end_branch_polarity(self):
        state, _ = state_with_stream(np.arange(16))
        branch = uve.SoBranchEnd(u(0), "out", negate=False)
        state.read_operand(u(0), F32)
        assert branch.execute(state) == "out"

    def test_dim_branch_on_2d_rows(self):
        mem = Memory(1 << 20)
        addr = mem.alloc_array(np.arange(40, dtype=np.float32))
        state = MachineState(memory=mem)
        state.stream_begin(0, Direction.LOAD, F32, MemLevel.L2)
        state.stream_dim(0, addr // 4, 20, 1)  # rows of 20
        state.stream_dim(0, 0, 2, 20)
        state.stream_finish(0)
        complete = uve.SoBranchDim(u(0), 0, "next", complete=True)
        state.read_operand(u(0), F32)  # 16 of 20: row not complete
        assert complete.execute(state) is None
        state.read_operand(u(0), F32)  # remaining 4: row complete
        assert complete.execute(state) == "next"


class TestPredication:
    def test_pred_compare_and_not(self):
        state, _ = state_with_stream(np.arange(16))
        state.write_v(u(3), full(16, F32, 8.0), F32)
        uve.SoPredComp("lt", p(1), u(0), u(3), etype=F32).execute(state)
        mask = state.read_pred(p(1), 16)
        assert mask[:8].all() and not mask[8:].any()
        uve.SoPredNot(p(2), p(1), etype=F32).execute(state)
        mask2 = state.read_pred(p(2), 16)
        assert not mask2[:8].any() and mask2[8:].all()

    def test_predicated_soop_masks_lanes(self):
        state, _ = state_with_stream(np.arange(16))
        state.write_pred(p(1), np.array([True] * 4 + [False] * 12))
        state.write_v(u(3), full(16, F32, 1.0), F32)
        inst = uve.SoOp("add", u(4), u(3), u(0), etype=F32, pred=p(1))
        inst.execute(state)
        got = state.read_v(u(4), F32)
        assert got.valid[:4].all() and not got.valid[4:].any()


class TestVlControl:
    def test_getvl_and_setvl(self):
        state = MachineState()
        uve.SoGetVl(x(1), etype=F32).execute(state)
        assert state.read_x(x(1)) == 16
        uve.SoSetVl(x(2), 4, etype=F32).execute(state)
        assert state.read_x(x(2)) == 4
        uve.SoGetVl(x(3), etype=F32).execute(state)
        assert state.read_x(x(3)) == 4

    def test_legacy_vector_load_store(self):
        mem = Memory(1 << 20)
        src = mem.alloc_array(np.arange(16, dtype=np.float32))
        dst = mem.alloc_array(np.zeros(16, dtype=np.float32))
        state = MachineState(memory=mem)
        state.write_x(x(1), src)
        state.write_x(x(2), dst)
        uve.SsLoadVec(u(1), x(1), etype=F32).execute(state)
        assert state.read_x(x(1)) == src + 64  # post-increment
        uve.SsStoreVec(u(1), x(2), etype=F32).execute(state)
        np.testing.assert_array_equal(
            mem.ndarray(dst, (16,), np.float32), np.arange(16)
        )
