"""Assembler coverage for the baseline-ISA mnemonics (SVE/NEON/RVV).

Assembles the paper's Fig. 1.B (SVE) and Fig. 1.C (RVV) saxpy listings
from text and verifies they execute correctly.
"""
import numpy as np

from repro.isa import sve_ops, rvv_ops, neon_ops
from repro.isa.assembler import assemble
from repro.memory.backing import Memory
from repro.sim.functional import FunctionalSimulator

SVE_SAXPY = """
; paper Fig. 1.B
    li       x3, {n}
    li       x8, {x}
    li       x9, {y}
    li       x4, 0
    fli      f0, 2.5
    dup      u0, f0
    whilelt  p1, x4, x3
loop:
    ld1w     u1, p1, x8, x4
    ld1w     u2, p1, x9, x4
    fmla     u2, p1, u1, u0
    st1w     u2, p1, x9, x4
    incw     x4
    whilelt  p1, x4, x3
    b.first  p1, loop
    halt
"""

RVV_SAXPY = """
; paper Fig. 1.C
    li        x3, {n}
    li        x8, {x}
    li        x9, {y}
    fli       f0, 2.5
loop:
    vsetvli   x4, x3
    vle.v     u1, x8
    vle.v     u2, x9
    vfmacc.vf u2, f0, u1
    vse.v     u2, x9
    sub       x3, x3, x4
    sll       x5, x4, 2
    add       x8, x8, x5
    add       x9, x9, x5
    bne       x3, 0, loop
    halt
"""


def run_saxpy(source, n=100):
    rng = np.random.default_rng(1)
    xs = rng.standard_normal(n).astype(np.float32)
    ys = rng.standard_normal(n).astype(np.float32)
    mem = Memory(1 << 20)
    xa, ya = mem.alloc_array(xs), mem.alloc_array(ys)
    program = assemble(source.format(x=xa, y=ya, n=n))
    FunctionalSimulator(program, memory=mem).run()
    np.testing.assert_allclose(
        mem.ndarray(ya, (n,), np.float32), 2.5 * xs + ys, rtol=1e-6
    )
    return program


class TestSveAssembly:
    def test_fig1b_saxpy(self):
        program = run_saxpy(SVE_SAXPY)
        kinds = {type(i).__name__ for i in program.instructions}
        assert {"WhileLt", "Ld1", "Fmla", "St1", "IncElems",
                "BranchPred"} <= kinds

    def test_sve_misc_mnemonics(self):
        program = assemble("""
            ptrue  p1
            ld1rw  u1, p1, x8
            index  u2, 0, 4
            cntw   x5
            faddv  f1, p1, u1
            fmaxv  f2, p1, u1
            fadd.m u3, p1, u1, u2
            b.none p1, out
        out:
            halt
        """)
        kinds = [type(i).__name__ for i in program.instructions]
        assert kinds == ["PTrue", "Ld1R", "Index", "CntElems", "Red", "Red",
                         "VOp", "BranchPred", "Halt"]


class TestRvvAssembly:
    def test_fig1c_saxpy(self):
        program = run_saxpy(RVV_SAXPY)
        kinds = {type(i).__name__ for i in program.instructions}
        assert {"VSetVli", "VlLoad", "VMaccVF", "VlStore"} <= kinds

    def test_rvv_misc_mnemonics(self):
        program = assemble("""
            vsetvli   x1, x2
            vlse.v    u1, x3, x4
            vadd.vv   u2, u1, u1
            vmul.vf   u3, u2, f1
            vfmacc.vv u3, u1, u2
            vfmv.v.f  u4, f0
            halt
        """)
        kinds = [type(i).__name__ for i in program.instructions]
        assert kinds == ["VSetVli", "VlLoadStrided", "VOpVV", "VOpVF",
                         "VMaccVV", "VDup", "Halt"]


class TestNeonAssembly:
    def test_neon_mnemonics(self):
        program = assemble("""
            dup.4s  u0, f0
            ldr.q!  u1, x8
            fmla.4s u1, u1, u0
            str.q!  u1, x9
            halt
        """)
        kinds = [type(i).__name__ for i in program.instructions]
        assert kinds == ["NVDup", "NVLoad", "NVFma", "NVStore", "Halt"]
        assert program.instructions[1].post_inc
        assert program.instructions[3].post_inc
