"""Unit tests for the SVE-like and NEON-like instruction semantics."""
import numpy as np
import pytest

from repro.common.types import ElementType
from repro.isa import f, p, u, x
from repro.isa import neon_ops as neon
from repro.isa import sve_ops as sve
from repro.isa.registers import P0
from repro.isa.vector import VecValue, from_list, full, zeros
from repro.memory.backing import Memory
from repro.sim.functional import MachineState

F32 = ElementType.F32


def fresh_state(values=None):
    mem = Memory(1 << 20)
    addr = mem.alloc_array(np.asarray(values, dtype=np.float32)) if values is not None else 0
    return MachineState(memory=mem), addr


class TestWhileLt:
    def test_full_predicate(self):
        state, _ = fresh_state()
        state.write_x(x(1), 0)
        state.write_x(x(2), 100)
        sve.WhileLt(p(1), x(1), x(2), etype=F32).execute(state)
        assert state.read_pred(p(1), 16).all()

    def test_partial_predicate(self):
        state, _ = fresh_state()
        state.write_x(x(1), 95)
        state.write_x(x(2), 100)
        sve.WhileLt(p(1), x(1), x(2), etype=F32).execute(state)
        mask = state.read_pred(p(1), 16)
        assert mask[:5].all() and not mask[5:].any()

    def test_empty_predicate(self):
        state, _ = fresh_state()
        state.write_x(x(1), 100)
        state.write_x(x(2), 100)
        sve.WhileLt(p(1), x(1), x(2), etype=F32).execute(state)
        assert not state.read_pred(p(1), 16).any()


class TestPredicatedLoadsStores:
    def test_partial_load_zeroes_inactive(self):
        data = np.arange(16, dtype=np.float32)
        state, addr = fresh_state(data)
        state.write_x(x(1), 0)
        state.write_x(x(2), 3)
        sve.WhileLt(p(1), x(1), x(2), etype=F32).execute(state)
        state.write_x(x(8), addr)
        sve.Ld1(u(1), p(1), x(8), etype=F32).execute(state)
        v = state.read_v(u(1), F32)
        np.testing.assert_array_equal(v.data[:3], [0, 1, 2])
        assert not v.data[3:].any()
        assert v.valid[:3].all() and not v.valid[3:].any()

    def test_partial_store_leaves_tail(self):
        data = np.zeros(16, dtype=np.float32)
        state, addr = fresh_state(data)
        state.write_x(x(1), 0)
        state.write_x(x(2), 2)
        sve.WhileLt(p(1), x(1), x(2), etype=F32).execute(state)
        state.write_v(u(1), full(16, F32, 7.0), F32)
        state.write_x(x(8), addr)
        sve.St1(u(1), p(1), x(8), etype=F32).execute(state)
        out = state.mem.ndarray(addr, (16,), np.float32)
        np.testing.assert_array_equal(out[:2], [7.0, 7.0])
        assert not out[2:].any()

    def test_gather_collects_indexed_lanes(self):
        data = np.arange(100, dtype=np.float32)
        state, addr = fresh_state(data)
        state.write_x(x(8), addr)
        idx = from_list([5, 50, 95, 0] + [0] * 12, F32, 16)
        state.write_v(u(2), idx, F32)
        sve.Ld1Gather(u(1), P0, x(8), u(2), etype=F32).execute(state)
        got = state.read_v(u(1), F32).data
        np.testing.assert_array_equal(got[:4], [5.0, 50.0, 95.0, 0.0])

    def test_scatter_writes_indexed_lanes(self):
        state, addr = fresh_state(np.zeros(64, dtype=np.float32))
        state.write_x(x(8), addr)
        state.write_v(u(1), full(16, F32, 3.5), F32)
        idx = from_list(list(range(0, 32, 2)), F32, 16)
        state.write_v(u(2), idx, F32)
        sve.St1Scatter(u(1), P0, x(8), u(2), etype=F32).execute(state)
        out = state.mem.ndarray(addr, (32,), np.float32)
        np.testing.assert_array_equal(out[::2], [3.5] * 16)
        assert not out[1::2].any()


class TestMergingSemantics:
    def test_vop_merges_inactive_lanes(self):
        state, _ = fresh_state()
        state.write_pred(p(1), np.array([True] * 8 + [False] * 8))
        state.write_v(u(1), full(16, F32, 100.0), F32)  # old dest
        state.write_v(u(2), full(16, F32, 1.0), F32)
        state.write_v(u(3), full(16, F32, 2.0), F32)
        sve.VOp("add", u(1), p(1), u(2), u(3), etype=F32).execute(state)
        got = state.read_v(u(1), F32).data
        np.testing.assert_array_equal(got[:8], [3.0] * 8)
        np.testing.assert_array_equal(got[8:], [100.0] * 8)

    def test_fmla_accumulates(self):
        state, _ = fresh_state()
        state.write_v(u(1), full(16, F32, 1.0), F32)
        state.write_v(u(2), full(16, F32, 2.0), F32)
        state.write_v(u(3), full(16, F32, 3.0), F32)
        sve.Fmla(u(1), P0, u(2), u(3), etype=F32).execute(state)
        np.testing.assert_array_equal(state.read_v(u(1), F32).data, [7.0] * 16)

    def test_predicated_reduction_ignores_inactive(self):
        state, _ = fresh_state()
        state.write_pred(p(1), np.array([True] * 4 + [False] * 12))
        state.write_v(u(1), from_list(range(16), F32, 16), F32)
        sve.Red("add", f(1), p(1), u(1), etype=F32).execute(state)
        assert state.read_f(f(1)) == 0 + 1 + 2 + 3

    def test_compare_produces_predicate(self):
        state, _ = fresh_state()
        state.write_v(u(1), from_list(range(16), F32, 16), F32)
        state.write_v(u(2), full(16, F32, 8.0), F32)
        sve.CmpPred("lt", p(2), P0, u(1), u(2), etype=F32).execute(state)
        mask = state.read_pred(p(2), 16)
        assert mask[:8].all() and not mask[8:].any()

    def test_sel_selects_lanewise(self):
        state, _ = fresh_state()
        state.write_pred(p(1), np.array([True, False] * 8))
        state.write_v(u(1), full(16, F32, 1.0), F32)
        state.write_v(u(2), full(16, F32, 2.0), F32)
        sve.Sel(u(3), p(1), u(1), u(2), etype=F32).execute(state)
        got = state.read_v(u(3), F32).data
        np.testing.assert_array_equal(got[::2], [1.0] * 8)
        np.testing.assert_array_equal(got[1::2], [2.0] * 8)


class TestElementCounters:
    def test_inc_and_cnt(self):
        state, _ = fresh_state()
        state.write_x(x(1), 10)
        sve.IncElems(x(1), etype=F32).execute(state)
        assert state.read_x(x(1)) == 26
        sve.CntElems(x(2), etype=F32).execute(state)
        assert state.read_x(x(2)) == 16

    def test_index(self):
        state, _ = fresh_state()
        sve.Index(u(1), 100, 3, etype=ElementType.I32).execute(state)
        got = state.read_v(u(1), ElementType.I32).data
        np.testing.assert_array_equal(got, 100 + 3 * np.arange(16))


class TestNeonFixedWidth:
    def test_lanes_always_four_for_f32(self):
        assert neon.neon_lanes(F32) == 4
        assert neon.neon_lanes(ElementType.F64) == 2

    def test_load_op_store_roundtrip(self):
        data = np.arange(8, dtype=np.float32)
        state, addr = fresh_state(data)
        state.write_x(x(8), addr)
        neon.NVLoad(u(1), x(8), etype=F32, post_inc=True).execute(state)
        assert state.read_x(x(8)) == addr + 16  # post-increment
        neon.NVOp("mul", u(2), u(1), u(1), etype=F32).execute(state)
        state.write_x(x(9), addr)
        neon.NVStore(u(2), x(9), etype=F32).execute(state)
        out = state.mem.ndarray(addr, (4,), np.float32)
        np.testing.assert_array_equal(out, data[:4] ** 2)

    def test_reduction_over_four_lanes_only(self):
        state, _ = fresh_state()
        state.write_v(u(1), from_list([1, 2, 3, 4] + [99] * 12, F32, 16), F32)
        neon.NVRed("add", f(1), u(1), etype=F32).execute(state)
        assert state.read_f(f(1)) == 10.0

    def test_unary_sqrt(self):
        state, _ = fresh_state()
        state.write_v(u(1), full(16, F32, 9.0), F32)
        neon.NVUnary("sqrt", u(2), u(1), etype=F32).execute(state)
        np.testing.assert_allclose(state.read_v(u(2), F32).data[:4], 3.0)
