"""Integration tests for stream/conventional memory interaction
(paper §IV-A *Memory Coherence*): data written by the conventional
pipeline is visible to newly configured input streams, and stream output
is visible to conventional loads — the reliable transition between
sequential code and stream loops."""
import numpy as np

from repro.common.types import ElementType
from repro.cpu.config import uve_machine
from repro.isa import ProgramBuilder, f, u, x
from repro.isa import scalar_ops as sc
from repro.isa import uve_ops as uve
from repro.memory.backing import Memory
from repro.sim.simulator import Simulator
from repro.streams.pattern import Direction

F32 = ElementType.F32
N = 64


class TestScalarThenStream:
    def test_scalar_stores_visible_to_input_stream(self):
        """Fill an array with conventional stores, then stream it."""
        mem = Memory(1 << 20)
        src = mem.alloc_array(np.zeros(N, dtype=np.float32))
        dst = mem.alloc_array(np.zeros(N, dtype=np.float32))
        b = ProgramBuilder("scalar-then-stream")
        b.emit(sc.Li(x(1), src), sc.Li(x(2), 0), sc.FLi(f(1), 0.0))
        b.label("fill")
        b.emit(
            sc.Store(f(1), x(1), 0, etype=F32),
            sc.FOp("add", f(1), f(1), 1.0),
            sc.IntOp("add", x(1), x(1), 4),
            sc.IntOp("add", x(2), x(2), 1),
            sc.BranchCmp("lt", x(2), N, "fill"),
        )
        # The input stream is configured AFTER the fill loop.
        b.emit(
            uve.SsConfig1D(u(0), Direction.LOAD, src // 4, N, 1, etype=F32),
            uve.SsConfig1D(u(1), Direction.STORE, dst // 4, N, 1, etype=F32),
        )
        b.label("copy")
        b.emit(
            uve.SoMove(u(1), u(0), etype=F32),
            uve.SoBranchEnd(u(0), "copy", negate=True),
            sc.Halt(),
        )
        result = Simulator(b.build(), mem, uve_machine()).run()
        np.testing.assert_array_equal(
            mem.ndarray(dst, (N,), np.float32), np.arange(N, dtype=np.float32)
        )
        assert result.cycles > 0

    def test_stream_output_visible_to_conventional_load(self):
        """Stream-produce an array, then read it back with scalar loads."""
        mem = Memory(1 << 20)
        src = mem.alloc_array(np.arange(N, dtype=np.float32))
        dst = mem.alloc_array(np.zeros(N, dtype=np.float32))
        out = mem.alloc_array(np.zeros(1, dtype=np.float32))
        b = ProgramBuilder("stream-then-scalar")
        b.emit(
            uve.SsConfig1D(u(0), Direction.LOAD, src // 4, N, 1, etype=F32),
            uve.SsConfig1D(u(1), Direction.STORE, dst // 4, N, 1, etype=F32),
        )
        b.label("copy")
        b.emit(
            uve.SoMove(u(1), u(0), etype=F32),
            uve.SoBranchEnd(u(0), "copy", negate=True),
        )
        # Conventional load of a stream-written element.
        b.emit(
            sc.Li(x(1), dst + 4 * (N - 1)),
            sc.Load(f(1), x(1), 0, etype=F32),
            sc.Li(x(2), out),
            sc.Store(f(1), x(2), 0, etype=F32),
            sc.Halt(),
        )
        Simulator(b.build(), mem, uve_machine()).run()
        assert mem.read_scalar(out, F32) == float(N - 1)

    def test_in_place_stream_update(self):
        """Input and output streams over the same array (WAR/WAW case the
        paper's model explicitly supports)."""
        mem = Memory(1 << 20)
        data = mem.alloc_array(np.arange(N, dtype=np.float32))
        b = ProgramBuilder("in-place")
        b.emit(
            uve.SsConfig1D(u(0), Direction.LOAD, data // 4, N, 1, etype=F32),
            uve.SsConfig1D(u(1), Direction.STORE, data // 4, N, 1, etype=F32),
            sc.FLi(f(0), 3.0),
            uve.SoDup(u(2), f(0), etype=F32),
        )
        b.label("scale")
        b.emit(
            uve.SoOp("mul", u(1), u(0), u(2), etype=F32),
            uve.SoBranchEnd(u(0), "scale", negate=True),
            sc.Halt(),
        )
        Simulator(b.build(), mem, uve_machine()).run()
        np.testing.assert_array_equal(
            mem.ndarray(data, (N,), np.float32),
            3.0 * np.arange(N, dtype=np.float32),
        )
