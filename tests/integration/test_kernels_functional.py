"""Integration: every kernel runs on every ISA and matches NumPy.

This suite is generated from the registry, so new kernels are covered
automatically.  It runs the *functional* simulator (fast) at a reduced
scale plus the default scale for UVE.
"""
import pytest

from repro.kernels import ISAS, all_kernels, get_kernel
from repro.sim.functional import FunctionalSimulator

KERNELS = [k.name for k in all_kernels()]


def run_functional(kernel, isa, scale=0.25, seed=1):
    wl = kernel.workload(seed=seed, scale=scale)
    program = kernel.build(isa, wl)
    sim = FunctionalSimulator(program, memory=wl.memory)
    summary = sim.run()
    wl.verify()
    return summary


@pytest.mark.parametrize("name", KERNELS)
@pytest.mark.parametrize("isa", ISAS)
def test_kernel_correct(name, isa):
    run_functional(get_kernel(name), isa)


@pytest.mark.parametrize("name", KERNELS)
def test_uve_commits_fewer_instructions_than_baselines(name):
    kernel = get_kernel(name)
    counts = {isa: run_functional(kernel, isa).committed for isa in ISAS}
    assert counts["uve"] < counts["sve"]
    assert counts["uve"] < counts["neon"]


@pytest.mark.parametrize("name", KERNELS)
def test_odd_sizes_still_correct(name):
    # A scale that produces ragged, non-vector-multiple dimensions.
    kernel = get_kernel(name)
    run_functional(kernel, "uve", scale=0.17, seed=3)
    run_functional(kernel, "sve", scale=0.17, seed=3)


@pytest.mark.parametrize("name", KERNELS)
def test_streams_all_disjoint_and_bounded(name):
    kernel = get_kernel(name)
    wl = kernel.workload(seed=0, scale=0.25)
    program = kernel.build("uve", wl)
    sim = FunctionalSimulator(program, memory=wl.memory)
    summary = sim.run()
    wl.verify()
    assert summary.streams, "UVE build configured no streams"
    for info in summary.streams.values():
        assert info.ndims <= 8
