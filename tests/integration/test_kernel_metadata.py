"""Consistency checks on the benchmark-suite metadata (Fig. 8 table)."""
import string

from repro.kernels import all_kernels, get_kernel
from repro.sim.functional import FunctionalSimulator


class TestSuiteMetadata:
    def test_letters_are_a_through_s(self):
        letters = [k.letter for k in all_kernels()]
        assert letters == list(string.ascii_uppercase[:19])

    def test_names_unique(self):
        names = [k.name for k in all_kernels()]
        assert len(set(names)) == len(names)

    def test_starred_benchmarks_match_paper(self):
        starred = {k.name for k in all_kernels() if not k.sve_vectorized}
        assert starred == {
            "covariance", "mamr", "mamr-diag", "mamr-ind",
            "seidel-2d", "floyd-warshall",
        }

    def test_stream_counts_within_isa_limit(self):
        for kernel in all_kernels():
            assert 1 <= kernel.n_streams <= 32

    def test_domains_cover_the_papers_set(self):
        domains = {k.domain for k in all_kernels()}
        for expected in ("memory", "BLAS", "algebra", "stencil",
                         "data mining", "n-body", "dynamic programming"):
            assert expected in domains

    def test_declared_stream_count_matches_uve_build(self):
        """For single-configuration kernels, the number of streams the
        UVE build actually configures equals the table's value."""
        single_config = ("memcpy", "saxpy", "gemm", "mvt", "jacobi-2d",
                        "irsmk", "knn", "haccmk", "seidel-2d", "trisolv")
        for name in single_config:
            kernel = get_kernel(name)
            wl = kernel.workload(scale=0.25)
            program = kernel.build("uve", wl)
            sim = FunctionalSimulator(program, memory=wl.memory)
            summary = sim.run()
            configured = len(summary.streams)
            assert configured == kernel.n_streams, (
                f"{name}: table says {kernel.n_streams}, build configured "
                f"{configured}"
            )
