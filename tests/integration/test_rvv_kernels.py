"""Integration tests for the RVV-like extension ISA (Fig. 1.C)."""
import pytest

from repro.cpu.config import baseline_machine
from repro.errors import ConfigError
from repro.kernels import get_kernel, unsupported_isas
from repro.sim.functional import FunctionalSimulator
from repro.sim.simulator import Simulator

RVV_KERNELS = (
    "memcpy", "stream", "saxpy", "dot", "jacobi-1d", "jacobi-2d", "knn"
)


@pytest.mark.parametrize("name", RVV_KERNELS)
@pytest.mark.parametrize("scale", [0.25, 0.17])
def test_rvv_correct(name, scale):
    kernel = get_kernel(name)
    wl = kernel.workload(seed=1, scale=scale)
    program = kernel.build("rvv", wl)
    FunctionalSimulator(program, memory=wl.memory).run()
    wl.verify()


@pytest.mark.parametrize("name", RVV_KERNELS)
def test_rvv_instruction_count_between_sve_and_neon(name):
    """RVV strip-mining costs more than UVE, comparable to SVE, and far
    less than fixed-width NEON."""
    kernel = get_kernel(name)
    counts = {}
    for isa in ("uve", "sve", "rvv", "neon"):
        wl = kernel.workload(seed=0, scale=0.25)
        program = kernel.build(isa, wl)
        sim = FunctionalSimulator(program, memory=wl.memory)
        counts[isa] = sim.run().committed
        wl.verify()
    assert counts["uve"] < counts["rvv"]
    assert counts["rvv"] < counts["neon"]
    assert counts["rvv"] < 2 * counts["sve"]


def test_rvv_runs_through_timing_model():
    kernel = get_kernel("saxpy")
    wl = kernel.workload(scale=0.25)
    program = kernel.build("rvv", wl)
    result = Simulator(program, wl.memory, baseline_machine()).run()
    wl.verify()
    assert result.cycles > 0


def test_rvv_unsupported_kernel_raises():
    """Missing per-ISA builders surface as a ConfigError naming the
    supported set (and as a registry-visible marker), not as a raw
    NotImplementedError from deep inside the builder."""
    kernel = get_kernel("gemm")
    assert "rvv" not in kernel.supported_isas()
    assert unsupported_isas("gemm") == ("rvv",)
    with pytest.raises(ConfigError, match="supported"):
        kernel.build("rvv", kernel.workload(scale=0.2))


def test_rvv_vsetvli_grants_shrinking_tail():
    """The final strip gets a shorter granted VL (no predication needed)."""
    import numpy as np
    from repro.isa import ProgramBuilder, x
    from repro.isa import rvv_ops as rvv
    from repro.isa import scalar_ops as sc
    from repro.memory.backing import Memory

    b = ProgramBuilder("vl-grant")
    b.emit(
        sc.Li(x(1), 21),
        rvv.VSetVli(x(2), x(1)),   # grants 16
        sc.IntOp("sub", x(1), x(1), x(2)),
        rvv.VSetVli(x(3), x(1)),   # grants 5
        sc.Halt(),
    )
    sim = FunctionalSimulator(b.build(), memory=Memory(1 << 16))
    sim.run()
    assert sim.state.read_x(x(2)) == 16
    assert sim.state.read_x(x(3)) == 5
