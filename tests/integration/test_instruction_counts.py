"""Golden committed-instruction counts per kernel and ISA.

These are regression locks: a change to a kernel's code shape or to an
ISA's semantics that alters the dynamic instruction count — the paper's
Fig. 8.A currency — must be deliberate and show up here.
Counts are at scale 0.25, seed 0.
"""
import pytest

from repro.kernels import get_kernel
from repro.sim.functional import FunctionalSimulator

#: kernel -> (uve, sve, neon) committed instructions at scale 0.25.
GOLDEN = {
    "memcpy": (2051, 5126, 16392),
    "stream": (3469, 9626, 32290),
    "saxpy": (774, 1801, 6155),
    "gemm": (344, 850, 4500),
    "3mm": (2479, 6076, 32716),
    "mvt": (193, 408, 1084),
    "gemver": (337, 794, 1852),
    "trisolv": (303, 535, 2776),
    "jacobi-1d": (2059, 6157, 20517),
    "jacobi-2d": (555, 1859, 4805),
    "irsmk": (193, 788, 4987),
    "haccmk": (580, 888, 2917),
    "knn": (1035, 1678, 6156),
    "covariance": (488, 19062, 19062),
    "mamr": (148, 2932, 2932),
    "mamr-diag": (117, 1900, 1900),
    "mamr-ind": (149, 3029, 3029),
    "seidel-2d": (3786, 4385, 4385),
    "floyd-warshall": (250, 2277, 2277),
}


def committed(name, isa):
    kernel = get_kernel(name)
    wl = kernel.workload(seed=0, scale=0.25)
    sim = FunctionalSimulator(kernel.build(isa, wl), memory=wl.memory)
    count = sim.run().committed
    wl.verify()
    return count


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_counts(name):
    uve, sve, neon = GOLDEN[name]
    assert committed(name, "uve") == uve
    assert committed(name, "sve") == sve
    assert committed(name, "neon") == neon


def test_golden_table_covers_all_kernels():
    from repro.kernels import kernel_names
    assert set(GOLDEN) == set(kernel_names())
