"""Timing-model integration: every kernel runs through the full
functional+timing Simulator at reduced scale, with sanity invariants."""
import pytest

from repro.cpu.config import baseline_machine, uve_machine
from repro.kernels import all_kernels, get_kernel
from repro.sim.simulator import Simulator

KERNELS = [k.name for k in all_kernels()]


@pytest.fixture(scope="module")
def timing_results():
    results = {}
    for name in KERNELS:
        kernel = get_kernel(name)
        for isa in ("uve", "sve"):
            cfg = uve_machine() if isa == "uve" else baseline_machine()
            wl = kernel.workload(seed=0, scale=0.2)
            program = kernel.build(isa, wl, cfg.vector_bits)
            result = Simulator(program, wl.memory, cfg).run()
            wl.verify()
            results[(name, isa)] = result
    return results


@pytest.mark.parametrize("name", KERNELS)
def test_timing_sane(timing_results, name):
    for isa in ("uve", "sve"):
        r = timing_results[(name, isa)]
        assert 0 < r.cycles < 50_000_000
        assert 0 < r.ipc <= 8.0
        assert r.committed == r.summary.committed


@pytest.mark.parametrize("name", KERNELS)
def test_uve_not_slower_than_baseline(timing_results, name):
    # At reduced scale a couple of chain-bound kernels run close to par;
    # UVE must never lose by more than a small margin and usually wins.
    uve = timing_results[(name, "uve")]
    sve = timing_results[(name, "sve")]
    assert sve.cycles / uve.cycles > 0.85


@pytest.mark.parametrize("name", KERNELS)
def test_engine_streams_fully_drained(timing_results, name):
    engine = timing_results[(name, "uve")].pipeline.engine
    assert engine is not None
    assert not engine.stores_pending
    for stream in engine.streams.values():
        if stream.is_load and stream.num_chunks:
            # every fetched chunk was consumed and committed
            assert stream.commit_head <= stream.num_chunks


def test_rename_blocks_bounded(timing_results):
    for r in timing_results.values():
        assert 0.0 <= r.rename_blocks_per_cycle <= 1.0


def test_bus_utilization_bounded(timing_results):
    for r in timing_results.values():
        assert 0.0 <= r.bus_utilization <= 1.0
