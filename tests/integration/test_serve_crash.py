"""Multi-process crash drill for the experiment service.

Boots real worker-shard subprocesses on a small sweep, SIGKILLs one
mid-campaign, and asserts the contract the service exists for: no job is
lost or duplicated, the surviving shard finishes the campaign via lease
expiry, and the result rows are byte-identical to an in-process serial
reference.  This is the same drill CI runs from the command line."""
import json

import pytest

from repro.harness.serve import ExperimentService, serve_workers
from repro.harness.sweep import (
    SweepSpec,
    run_sweep_serial,
    run_sweep_service,
)

SCALE = 0.05

#: small enough to finish in seconds, big enough that a mid-campaign
#: SIGKILL reliably lands while jobs are still pending.
SWEEP = {
    "name": "crash-drill",
    "kernels": ["saxpy", "memcpy"],
    "isas": ["uve"],
    "axes": {
        "vector_bits": [128, 256, 512],
        "engine.fifo_depth": [4, 8],
    },
}


@pytest.fixture(scope="module")
def reference():
    return run_sweep_serial(SweepSpec.from_dict(SWEEP), scale=SCALE)


class TestCrashRecovery:
    def test_sigkilled_worker_loses_nothing(self, tmp_path, reference):
        spec = SweepSpec.from_dict(SWEEP)
        payload = run_sweep_service(
            spec, tmp_path / "c", workers=2, scale=SCALE,
            lease_seconds=3.0, chaos_kill=1, timeout_s=300.0,
        )
        # One shard was SIGKILLed (exit -9), the other drained the queue.
        assert -9 in payload["jobs"]["worker_exits"]
        queue = payload["jobs"]["queue"]
        assert queue["done"] == queue["total"] == 12
        assert queue["dead"] == queue["pending"] == queue["leased"] == 0
        # No loss, no duplication: rows byte-identical to the serial
        # reference, one row per expanded point.
        assert json.dumps(payload["rows"]) == \
            json.dumps(reference["rows"])

        # The chaos kill is visible in the structured event log, and any
        # lease the victim held was requeued at most once.
        service = ExperimentService(tmp_path / "c", scale=SCALE, seed=0)
        events = service.queue.events()
        assert any(e["event"] == "chaos-kill" for e in events)
        assert all(job.requeues <= 1 for job in service.queue.jobs())

        # Resume after the chaos run: pure cache hits, same bytes.
        resumed = run_sweep_service(
            spec, tmp_path / "c", workers=1, scale=SCALE,
            resume=True, timeout_s=120.0,
        )
        assert json.dumps(resumed["rows"]) == \
            json.dumps(reference["rows"])
        assert resumed["jobs"]["cache_hit_rate"] == 1.0

    def test_all_workers_killed_then_cold_restart(self, tmp_path,
                                                  reference):
        """Worst case: every shard dies (supervisor torn down mid-flight).
        A later cold start on the same campaign dir finishes the sweep."""
        spec = SweepSpec.from_dict(SWEEP)
        root = tmp_path / "c"
        service = ExperimentService(
            root, scale=SCALE, seed=0, lease_seconds=3.0,
        )
        service.submit_many([p.spec for p in spec.expand()])
        # Run shards bounded to a few jobs each, so they exit with the
        # queue half-drained — indistinguishable from a machine crash
        # (plus any stale lease a real crash would leave).
        serve_workers(root, workers=2, max_jobs=3)
        counts = service.queue.counts()
        assert 0 < counts["done"] < counts["total"]

        payload = run_sweep_service(
            spec, root, workers=2, scale=SCALE, resume=True,
            timeout_s=300.0,
        )
        assert json.dumps(payload["rows"]) == \
            json.dumps(reference["rows"])
        assert payload["jobs"]["queue"]["done"] == 12
