"""Unit tests for element types and vector shapes."""
import numpy as np
import pytest

from repro.common.types import (
    CACHE_LINE_BYTES,
    DEFAULT_VECTOR_BITS,
    ElementType,
    VectorShape,
    lanes_for,
)


class TestElementType:
    def test_widths(self):
        assert ElementType.I8.width == 1
        assert ElementType.I16.width == 2
        assert ElementType.F32.width == 4
        assert ElementType.F64.width == 8

    def test_float_flags(self):
        assert ElementType.F32.is_float
        assert not ElementType.I32.is_float

    def test_signedness(self):
        assert ElementType.I32.is_signed
        assert not ElementType.U32.is_signed
        assert ElementType.F64.is_signed

    def test_dtypes(self):
        assert ElementType.F32.dtype == np.dtype(np.float32)
        assert ElementType.U16.dtype == np.dtype(np.uint16)

    def test_from_suffix(self):
        assert ElementType.from_suffix("w") is ElementType.I32
        assert ElementType.from_suffix("fd") is ElementType.F64
        with pytest.raises(ValueError):
            ElementType.from_suffix("zz")


class TestVectorShape:
    def test_default_512_bits(self):
        shape = VectorShape()
        assert shape.bits == DEFAULT_VECTOR_BITS == 512
        assert shape.lanes == 16
        assert shape.bytes == 64 == CACHE_LINE_BYTES

    def test_lanes_by_type(self):
        assert VectorShape(512, ElementType.F64).lanes == 8
        assert VectorShape(512, ElementType.I8).lanes == 64
        assert VectorShape(128, ElementType.F32).lanes == 4

    def test_non_multiple_rejected(self):
        with pytest.raises(ValueError):
            VectorShape(100, ElementType.F32)

    def test_lanes_for_helper(self):
        assert lanes_for(256, ElementType.F32) == 8
