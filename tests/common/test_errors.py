"""The exception hierarchy: every package error is a ReproError."""
import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in ("DescriptorError", "StreamError", "IsaError",
                     "AssemblerError", "EncodingError", "ExecutionError",
                     "MemoryAccessError", "PageFaultError", "ConfigError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_assembler_is_isa_error(self):
        assert issubclass(errors.AssemblerError, errors.IsaError)
        assert issubclass(errors.EncodingError, errors.IsaError)

    def test_page_fault_is_memory_error(self):
        assert issubclass(errors.PageFaultError, errors.MemoryAccessError)

    def test_single_catch_at_api_boundary(self):
        from repro.memory.backing import Memory
        mem = Memory(64)
        with pytest.raises(errors.ReproError):
            mem.read_scalar(1000, __import__(
                "repro.common.types", fromlist=["ElementType"]
            ).ElementType.F32)


class TestMemoryBounds:
    def test_negative_address(self):
        from repro.common.types import ElementType
        from repro.memory.backing import Memory
        mem = Memory(1024)
        with pytest.raises(errors.MemoryAccessError):
            mem.read_scalar(-4, ElementType.F32)

    def test_allocation_exhaustion(self):
        from repro.memory.backing import Memory
        mem = Memory(1024)
        with pytest.raises(errors.MemoryAccessError):
            mem.alloc(4096)

    def test_block_overflow(self):
        from repro.common.types import ElementType
        from repro.memory.backing import Memory
        mem = Memory(256)
        with pytest.raises(errors.MemoryAccessError):
            mem.read_block(200, 100, ElementType.F32)
