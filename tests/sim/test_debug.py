"""Tests for the debug/introspection helpers."""
import numpy as np

from repro.isa.assembler import assemble
from repro.memory.backing import Memory
from repro.sim.debug import functional_trace, pipeline_timeline, stream_report
from repro.sim.functional import FunctionalSimulator


def make_saxpy(n=64):
    mem = Memory(1 << 20)
    xs = mem.alloc_array(np.arange(n, dtype=np.float32))
    ys = mem.alloc_array(np.ones(n, dtype=np.float32))
    source = f"""
        ss.ld.w     u0, {xs // 4}, {n}, 1
        ss.ld.w     u1, {ys // 4}, {n}, 1
        ss.st.w     u2, {ys // 4}, {n}, 1
        fli         f0, 2.0
        so.v.dup.fw u3, f0
    loop:
        so.a.mul.fp u4, u3, u0
        so.a.add.fp u2, u4, u1
        so.b.nend   u0, loop
        halt
    """
    return assemble(source, "saxpy"), mem


class TestFunctionalTrace:
    def test_shows_stream_events_and_branches(self):
        program, mem = make_saxpy()
        text = functional_trace(program, mem, limit=20)
        assert "consume u0#0" in text
        assert "produce u2#0" in text
        assert "taken" in text

    def test_truncates_at_limit(self):
        program, mem = make_saxpy()
        text = functional_trace(program, mem, limit=5)
        assert "truncated" in text

    def test_scalar_memory_ops_shown(self):
        from repro.isa import ProgramBuilder, x
        from repro.isa import scalar_ops as sc
        mem = Memory(1 << 16)
        addr = mem.alloc(64)
        b = ProgramBuilder("m")
        b.emit(sc.Li(x(1), addr), sc.Load(x(2), x(1), 0), sc.Halt())
        text = functional_trace(b.build(), mem)
        assert f"R[{addr:#x}]" in text


class TestPipelineTimeline:
    def test_orders_rename_issue_commit(self):
        program, mem = make_saxpy()
        text = pipeline_timeline(program, mem, count=12)
        assert "rename" in text and "commit" in text
        assert "total:" in text
        # Each populated row must have rename <= issue <= commit.
        for line in text.splitlines()[2:-1]:
            cols = line.split()
            if len(cols) >= 3 and cols[-1] != "-" and cols[-2] != "-":
                rename, issue, commit = (
                    float(cols[-3]), float(cols[-2]), float(cols[-1])
                )
                assert rename <= issue <= commit


class TestStreamReport:
    def test_lists_all_streams(self):
        program, mem = make_saxpy()
        sim = FunctionalSimulator(program, memory=mem)
        summary = sim.run()
        text = stream_report(summary)
        assert text.count("load") == 2
        assert text.count("store") == 1
