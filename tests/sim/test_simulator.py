"""Unit tests for the combined Simulator (two-pass orchestration)."""
import numpy as np
import pytest

from repro.cpu.config import baseline_machine, uve_machine
from repro.isa import ProgramBuilder, f, u, x
from repro.isa import scalar_ops as sc
from repro.isa import uve_ops as uve
from repro.errors import ExecutionError
from repro.isa.microop import OpClass
from repro.memory.backing import Memory
from repro.sim.simulator import SimulationResult, Simulator, _check_replay
from repro.streams.pattern import Direction


def scale_program(mem, n=256):
    data = mem.alloc_array(np.arange(n, dtype=np.float32))
    b = ProgramBuilder("scale")
    b.emit(
        uve.SsConfig1D(u(0), Direction.LOAD, data // 4, n, 1),
        uve.SsConfig1D(u(1), Direction.STORE, data // 4, n, 1),
        sc.FLi(f(0), 2.0),
        uve.SoDup(u(2), f(0)),
    )
    b.label("loop")
    b.emit(
        uve.SoOp("mul", u(1), u(0), u(2)),
        uve.SoBranchEnd(u(0), "loop", negate=True),
        sc.Halt(),
    )
    return b.build(), data


class TestTwoPassOrchestration:
    def test_memory_restored_between_passes(self):
        """In-place kernels replay identically because pass 2 starts from
        a snapshot — the final memory equals a single sequential run."""
        mem = Memory(1 << 20)
        program, data = scale_program(mem)
        Simulator(program, mem, uve_machine()).run()
        got = mem.ndarray(data, (256,), np.float32)
        np.testing.assert_array_equal(got, 2.0 * np.arange(256))

    def test_result_properties(self):
        mem = Memory(1 << 20)
        program, _ = scale_program(mem)
        result = Simulator(program, mem, uve_machine()).run()
        assert isinstance(result, SimulationResult)
        assert result.committed > 0
        assert result.cycles > 0
        assert result.ipc == result.committed / result.cycles
        assert 0 <= result.bus_utilization <= 1
        assert 0 <= result.rename_blocks_per_cycle <= 1
        assert result.program == "scale"

    def test_warm_flag_changes_timing_not_results(self):
        cold_mem = Memory(1 << 20)
        cold_prog, cold_data = scale_program(cold_mem)
        cold = Simulator(cold_prog, cold_mem, uve_machine(), warm=False).run()

        warm_mem = Memory(1 << 20)
        warm_prog, warm_data = scale_program(warm_mem)
        warm = Simulator(warm_prog, warm_mem, uve_machine(), warm=True).run()

        assert cold.committed == warm.committed
        assert cold.cycles > warm.cycles  # cold misses go to DRAM
        np.testing.assert_array_equal(
            cold_mem.ndarray(cold_data, (256,), np.float32),
            warm_mem.ndarray(warm_data, (256,), np.float32),
        )

    def test_run_functional_is_cheap_path(self):
        mem = Memory(1 << 20)
        program, _ = scale_program(mem)
        summary = Simulator(program, mem, uve_machine()).run_functional()
        assert summary.committed > 0
        assert summary.streams  # stream metadata collected

    def test_default_config_is_uve(self):
        mem = Memory(1 << 20)
        program, _ = scale_program(mem)
        result = Simulator(program, mem).run()
        assert result.pipeline.engine is not None


class TestReplayCheck:
    """Simulator.run must fail loudly if the timing pass (pass 2) does
    not replay the exact dynamic trace the stream metadata (pass 1) was
    collected from."""

    def run_summary(self):
        mem = Memory(1 << 20)
        program, _ = scale_program(mem)
        sim = Simulator(program, mem, uve_machine())
        return sim.run_functional()

    def test_identical_replay_passes(self):
        # Simulator.run calls _check_replay internally; a normal run must
        # not trip it.
        mem = Memory(1 << 20)
        program, _ = scale_program(mem)
        Simulator(program, mem, uve_machine()).run()

    def test_committed_divergence(self):
        first, second = self.run_summary(), self.run_summary()
        second.committed += 3
        with pytest.raises(ExecutionError, match="committed"):
            _check_replay("scale", first, second)

    def test_per_class_divergence_names_the_class(self):
        first, second = self.run_summary(), self.run_summary()
        cls = next(iter(second.by_class))
        second.by_class[cls] += 1
        with pytest.raises(ExecutionError, match=cls.name):
            _check_replay("scale", first, second)

    def test_branch_divergence(self):
        first, second = self.run_summary(), self.run_summary()
        second.taken_branches += 1
        with pytest.raises(ExecutionError, match="taken branches"):
            _check_replay("scale", first, second)

    def test_stream_chunk_divergence(self):
        first, second = self.run_summary(), self.run_summary()
        uid, info = next(iter(second.streams.items()))
        info.chunks.append([])
        with pytest.raises(ExecutionError, match=f"uid {uid}"):
            _check_replay("scale", first, second)

    def test_missing_stream_config(self):
        first, second = self.run_summary(), self.run_summary()
        second.streams.clear()
        with pytest.raises(ExecutionError, match="stream configurations"):
            _check_replay("scale", first, second)

    def test_message_names_the_program(self):
        first, second = self.run_summary(), self.run_summary()
        second.committed += 1
        with pytest.raises(ExecutionError, match="'scale'"):
            _check_replay("scale", first, second)


class TestResultExport:
    def test_to_dict_is_json_serialisable(self):
        import json
        mem = Memory(1 << 20)
        program, _ = scale_program(mem)
        result = Simulator(program, mem, uve_machine()).run()
        payload = result.to_dict()
        text = json.dumps(payload)  # must not raise
        assert payload["program"] == "scale"
        assert payload["engine"]["chunks_filled"] > 0
        assert "rename_block_causes" in payload

    def test_baseline_export_has_no_engine(self):
        b = ProgramBuilder("tiny")
        b.emit(sc.Li(x(1), 1), sc.Halt())
        result = Simulator(b.build(), Memory(1 << 16),
                           baseline_machine()).run()
        assert "engine" not in result.to_dict()
