"""Tests for stream context save/restore (paper §IV-A Context Switching)."""
import numpy as np

from repro.common.types import ElementType
from repro.isa import u
from repro.memory.backing import Memory
from repro.sim.functional import MachineState
from repro.streams.pattern import Direction, MemLevel

F32 = ElementType.F32


def make_state(n=64):
    mem = Memory(1 << 20)
    addr = mem.alloc_array(np.arange(n, dtype=np.float32))
    state = MachineState(memory=mem)
    state.stream_begin(0, Direction.LOAD, F32, MemLevel.L2)
    state.stream_dim(0, addr // 4, n, 1)
    state.stream_finish(0)
    return state, addr


class TestContextSwitch:
    def test_save_suspends_all_streams(self):
        state, _ = make_state()
        context = state.save_stream_context()
        assert len(context) == 1
        assert not state.is_stream(0)  # suspended

    def test_restore_resumes_from_commit_point(self):
        state, _ = make_state()
        first = state.read_operand(u(0), F32)  # elements 0..15
        context = state.save_stream_context()
        state.restore_stream_context(context)
        second = state.read_operand(u(0), F32)
        assert second.data[0] == 16.0  # continues where it left off

    def test_context_size_within_paper_bounds(self):
        state, _ = make_state()
        context = state.save_stream_context()
        # Paper: 32 B (1-D) up to 400 B (8-D + 7 modifiers) per stream.
        assert 32 <= context[0]["bytes"] <= 400

    def test_restore_into_fresh_state(self):
        # Simulate an OS-level switch: state is discarded and rebuilt.
        state, addr = make_state()
        state.read_operand(u(0), F32)
        state.read_operand(u(0), F32)  # 32 elements consumed
        context = state.save_stream_context()

        fresh = MachineState(memory=state.mem)
        fresh.restore_stream_context(context)
        value = fresh.read_operand(u(0), F32)
        assert value.data[0] == 32.0

    def test_restored_stream_ends_correctly(self):
        state, _ = make_state(n=32)
        state.read_operand(u(0), F32)
        context = state.save_stream_context()
        state.restore_stream_context(context)
        state.read_operand(u(0), F32)
        assert state.stream_ended(0)

    def test_restored_stream_gets_fresh_uid(self):
        state, _ = make_state()
        context = state.save_stream_context()
        before = set(state.stream_infos)
        state.restore_stream_context(context)
        assert len(state.stream_infos) == len(before) + 1
