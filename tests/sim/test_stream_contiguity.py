"""Regression tests for the stream contiguity fast path and the
scalar/vector interleave contract of `_RuntimeStream`.

The fast path dispatches a chunk to ``read_block``/``write_block`` only
when the *entire* address vector steps by exactly one element width.
The historical bug checked just the endpoints, so a permuted interior
(e.g. ``[b, b+8, b+4, b+12]`` — endpoints 3 widths apart) silently read
and wrote the wrong bytes.  These tests inject crafted runs directly
into the stream's run iterator so the exact address vectors are under
test control.
"""
from types import SimpleNamespace

import numpy as np
import pytest

from repro.common.types import ElementType
from repro.errors import StreamError
from repro.isa.vector import VecValue
from repro.memory.backing import Memory
from repro.sim.functional import _RuntimeStream
from repro.sim.trace import StreamTraceInfo
from repro.streams.pattern import (
    Descriptor,
    Direction,
    Level,
    MemLevel,
    StreamPattern,
)

F32 = ElementType.F32
WIDTH = F32.width
LANES = 4


def make_stream(direction, addrs, lanes=LANES, vectorized=True):
    """A 1-D stream whose next run is exactly ``addrs`` (byte addresses)."""
    mem = Memory(1 << 12)
    pattern = StreamPattern(
        levels=[Level(Descriptor(0, len(addrs), 1))],
        etype=F32,
        direction=direction,
    )
    trace = StreamTraceInfo(
        uid=0,
        reg=0,
        direction=direction,
        etype=F32,
        mem_level=MemLevel.L2,
        ndims=1,
        storage_bytes=0,
    )
    stream = _RuntimeStream(0, 0, pattern, lanes, mem, trace,
                            vectorized=vectorized)
    run = SimpleNamespace(
        addresses=np.asarray(addrs, dtype=np.int64), dims_ended=0
    )
    if vectorized:
        stream._runs = iter([run])
    return stream, mem


def fill(mem, addrs, values):
    for addr, value in zip(addrs, values):
        mem.write_scalar(addr, value, F32)


class TestContiguityFastPath:
    def test_permuted_interior_read_is_gathered(self):
        # Endpoints are exactly (count-1) widths apart, but the interior
        # is permuted: an endpoint-only contiguity check takes the block
        # path here and returns the elements in address order instead of
        # stream order.
        addrs = [64, 64 + 2 * WIDTH, 64 + WIDTH, 64 + 3 * WIDTH]
        stream, mem = make_stream(Direction.LOAD, addrs)
        fill(mem, sorted(addrs), [1.0, 2.0, 3.0, 4.0])
        value, _ = stream.read_vector()
        np.testing.assert_array_equal(
            value.data, np.array([1.0, 3.0, 2.0, 4.0], dtype=np.float32)
        )
        assert value.valid.all()

    def test_permuted_interior_write_is_scattered(self):
        addrs = [64, 64 + 2 * WIDTH, 64 + WIDTH, 64 + 3 * WIDTH]
        stream, mem = make_stream(Direction.STORE, addrs)
        data = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
        stream.write_vector(VecValue(data, np.ones(LANES, dtype=bool)))
        got = [mem.read_scalar(a, F32) for a in sorted(addrs)]
        # Stream element i lands at addrs[i]: address order is 1, 3, 2, 4.
        assert got == [1.0, 3.0, 2.0, 4.0]

    def test_reversed_chunk_is_not_contiguous(self):
        # Descending addresses: first-minus-last endpoint arithmetic can
        # look contiguous under a sign error; the full check cannot.
        addrs = [64 + 3 * WIDTH, 64 + 2 * WIDTH, 64 + WIDTH, 64]
        stream, mem = make_stream(Direction.LOAD, addrs)
        fill(mem, sorted(addrs), [1.0, 2.0, 3.0, 4.0])
        value, _ = stream.read_vector()
        np.testing.assert_array_equal(
            value.data, np.array([4.0, 3.0, 2.0, 1.0], dtype=np.float32)
        )

    def test_contiguous_chunk_reads_block(self):
        addrs = [64 + i * WIDTH for i in range(LANES)]
        stream, mem = make_stream(Direction.LOAD, addrs)
        fill(mem, addrs, [5.0, 6.0, 7.0, 8.0])
        value, _ = stream.read_vector()
        np.testing.assert_array_equal(
            value.data, np.array([5.0, 6.0, 7.0, 8.0], dtype=np.float32)
        )

    def test_contiguous_chunk_writes_block(self):
        addrs = [64 + i * WIDTH for i in range(LANES)]
        stream, mem = make_stream(Direction.STORE, addrs)
        data = np.array([5.0, 6.0, 7.0, 8.0], dtype=np.float32)
        stream.write_vector(VecValue(data, np.ones(LANES, dtype=bool)))
        assert [mem.read_scalar(a, F32) for a in addrs] == [5.0, 6.0, 7.0, 8.0]

    def test_duplicate_write_addresses_last_wins(self):
        # Two stream elements target the same address; the scalar
        # reference applies them in order, so the last one must win.
        addrs = [64, 64 + WIDTH, 64 + WIDTH, 64 + 2 * WIDTH]
        stream, mem = make_stream(Direction.STORE, addrs)
        data = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
        stream.write_vector(VecValue(data, np.ones(LANES, dtype=bool)))
        assert mem.read_scalar(64 + WIDTH, F32) == 3.0

    def test_single_element_chunk(self):
        stream, mem = make_stream(Direction.LOAD, [128], lanes=1)
        fill(mem, [128], [9.0])
        value, _ = stream.read_vector()
        assert value.data[0] == 9.0
        assert value.valid[0]

    def test_vectorized_matches_legacy_on_strided_chunk(self):
        addrs = [64 + i * 3 * WIDTH for i in range(LANES)]
        values = [1.5, -2.0, 0.25, 7.0]
        vec_stream, vec_mem = make_stream(Direction.LOAD, addrs)
        fill(vec_mem, addrs, values)
        vec, _ = vec_stream.read_vector()

        legacy_stream, legacy_mem = make_stream(
            Direction.LOAD, addrs, vectorized=False
        )
        fill(legacy_mem, addrs, values)
        # The legacy path iterates the real pattern; replace its element
        # iterator with the same crafted addresses.
        legacy_stream._elements = iter(
            [SimpleNamespace(address=a, dims_ended=(0 if i == LANES - 1 else -1))
             for i, a in enumerate(addrs)]
        )
        legacy, _ = legacy_stream.read_vector()
        np.testing.assert_array_equal(vec.data, legacy.data)
        np.testing.assert_array_equal(vec.valid, legacy.valid)


class TestScalarVectorInterleave:
    """A vector access must not land mid-chunk: partial scalar
    consumption leaves an open chunk that only further scalar accesses
    (or the chunk boundary) may close."""

    def _load_stream(self, n=8):
        addrs = [64 + i * WIDTH for i in range(n)]
        stream, mem = make_stream(Direction.LOAD, addrs)
        fill(mem, addrs, [float(i) for i in range(n)])
        return stream

    def _store_stream(self, n=8):
        addrs = [64 + i * WIDTH for i in range(n)]
        stream, _ = make_stream(Direction.STORE, addrs)
        return stream

    def test_vector_read_after_partial_scalar_read_raises(self):
        stream = self._load_stream()
        stream.read_scalar()
        with pytest.raises(StreamError, match="partial scalar"):
            stream.read_vector()

    def test_vector_write_after_partial_scalar_write_raises(self):
        stream = self._store_stream()
        stream.write_scalar(1.0)
        with pytest.raises(StreamError, match="partial scalar"):
            stream.write_vector(
                VecValue(
                    np.zeros(LANES, dtype=np.float32),
                    np.ones(LANES, dtype=bool),
                )
            )

    def test_vector_read_allowed_at_chunk_boundary(self):
        # LANES scalar reads complete the open chunk; the next vector
        # read starts a fresh chunk and must succeed.
        stream = self._load_stream()
        for _ in range(LANES):
            stream.read_scalar()
        value, chunk_id = stream.read_vector()
        assert chunk_id == 1
        np.testing.assert_array_equal(
            value.data, np.array([4.0, 5.0, 6.0, 7.0], dtype=np.float32)
        )

    def test_vector_write_allowed_at_chunk_boundary(self):
        stream = self._store_stream()
        for i in range(LANES):
            stream.write_scalar(float(i))
        data = np.full(LANES, 9.0, dtype=np.float32)
        chunk_id = stream.write_vector(
            VecValue(data, np.ones(LANES, dtype=bool))
        )
        assert chunk_id == 1
