"""Unit tests for the dynamic-trace structures."""
from repro.common.types import ElementType
from repro.isa import ProgramBuilder, f, x
from repro.isa import scalar_ops as sc
from repro.isa.microop import OpClass
from repro.memory.backing import Memory
from repro.sim.functional import FunctionalSimulator
from repro.sim.trace import StreamTraceInfo
from repro.streams.pattern import Direction, MemLevel


class TestTraceSummary:
    def _summary(self):
        b = ProgramBuilder("t")
        b.emit(sc.Li(x(1), 0), sc.Li(x(2), 5))
        b.label("loop")
        b.emit(
            sc.FOp("add", f(1), f(1), 1.0),
            sc.IntOp("add", x(1), x(1), 1),
            sc.BranchCmp("lt", x(1), x(2), "loop"),
            sc.Halt(),
        )
        sim = FunctionalSimulator(b.build())
        return sim.run()

    def test_committed_counts(self):
        summary = self._summary()
        assert summary.committed == 2 + 5 * 3 + 1

    def test_by_class_breakdown(self):
        summary = self._summary()
        assert summary.by_class[OpClass.FP_ALU] == 5
        assert summary.by_class[OpClass.BRANCH] == 5
        assert summary.by_class[OpClass.HALT] == 1

    def test_branch_statistics(self):
        summary = self._summary()
        assert summary.branches == 5
        assert summary.taken_branches == 4  # last iteration falls through

    def test_vector_ops_zero_for_scalar_code(self):
        assert self._summary().vector_ops == 0


class TestStreamTraceInfo:
    def test_total_elements(self):
        info = StreamTraceInfo(
            uid=0, reg=3, direction=Direction.LOAD,
            etype=ElementType.F32, mem_level=MemLevel.L2,
            ndims=2, storage_bytes=48,
        )
        info.chunks = [[0, 4, 8], [12, 16]]
        assert info.total_elements() == 5
        assert info.is_load

    def test_store_direction(self):
        info = StreamTraceInfo(
            uid=1, reg=2, direction=Direction.STORE,
            etype=ElementType.F32, mem_level=MemLevel.L1,
            ndims=1, storage_bytes=32,
        )
        assert not info.is_load
