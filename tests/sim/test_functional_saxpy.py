"""End-to-end functional tests: the paper's saxpy kernel (Fig. 1 / Fig. 4)
hand-coded in UVE, SVE-like and NEON-like form, verified against NumPy."""
import numpy as np
import pytest

from repro.common.types import ElementType
from repro.isa import ProgramBuilder, f, p, u, x
from repro.isa import neon_ops as neon
from repro.isa import scalar_ops as sc
from repro.isa import sve_ops as sve
from repro.isa import uve_ops as uve
from repro.memory.backing import Memory
from repro.sim.functional import FunctionalSimulator
from repro.streams.pattern import Direction

F32 = ElementType.F32


def make_workload(n, seed=0):
    rng = np.random.default_rng(seed)
    xs = rng.standard_normal(n).astype(np.float32)
    ys = rng.standard_normal(n).astype(np.float32)
    a = np.float32(2.5)
    return xs, ys, a


def build_uve_saxpy(x_addr, y_addr, n, a):
    """Fig. 4: three stream configs, dup, then a 3-instruction loop."""
    b = ProgramBuilder("saxpy-uve")
    b.emit(
        uve.SsConfig1D(u(0), Direction.LOAD, x_addr // 4, n, 1, etype=F32),
        uve.SsConfig1D(u(1), Direction.LOAD, y_addr // 4, n, 1, etype=F32),
        uve.SsConfig1D(u(2), Direction.STORE, y_addr // 4, n, 1, etype=F32),
        sc.FLi(f(0), float(a)),
        uve.SoDup(u(3), f(0), etype=F32),
    )
    b.label("loop")
    b.emit(
        uve.SoOp("mul", u(4), u(3), u(0), etype=F32),
        uve.SoOp("add", u(2), u(4), u(1), etype=F32),
        uve.SoBranchEnd(u(0), "loop", negate=True),
    )
    b.emit(sc.Halt())
    return b.build()


def build_sve_saxpy(x_addr, y_addr, n, a):
    """Fig. 1.B shape: whilelt/ld1/ld1/fmla/st1/incw/whilelt/b.first."""
    b = ProgramBuilder("saxpy-sve")
    b.emit(
        sc.Li(x(3), n),
        sc.Li(x(8), x_addr),
        sc.Li(x(9), y_addr),
        sc.Li(x(4), 0),
        sve.WhileLt(p(1), x(4), x(3), etype=F32),
        sc.FLi(f(0), float(a)),
        sve.Dup(u(0), f(0), etype=F32),
    )
    b.label("loop")
    b.emit(
        sve.Ld1(u(1), p(1), x(8), index=x(4), etype=F32),
        sve.Ld1(u(2), p(1), x(9), index=x(4), etype=F32),
        sve.Fmla(u(2), p(1), u(1), u(0), etype=F32),
        sve.St1(u(2), p(1), x(9), index=x(4), etype=F32),
        sve.IncElems(x(4), etype=F32),
        sve.WhileLt(p(1), x(4), x(3), etype=F32),
        sve.BranchPred("first", p(1), "loop", etype=F32),
    )
    b.emit(sc.Halt())
    return b.build()


def build_neon_saxpy(x_addr, y_addr, n, a):
    """NEON: fixed 128-bit body plus scalar tail loop."""
    lanes = 4
    b = ProgramBuilder("saxpy-neon")
    b.emit(
        sc.Li(x(3), n - n % lanes),
        sc.Li(x(8), x_addr),
        sc.Li(x(9), y_addr),
        sc.Li(x(4), 0),
        sc.FLi(f(0), float(a)),
        neon.NVDup(u(0), f(0), etype=F32),
        sc.BranchCmp("ge", x(4), x(3), "tail"),
    )
    b.label("loop")
    b.emit(
        neon.NVLoad(u(1), x(8), etype=F32, post_inc=True),
        neon.NVLoad(u(2), x(9), etype=F32),
        neon.NVFma(u(2), u(1), u(0), etype=F32),
        neon.NVStore(u(2), x(9), etype=F32, post_inc=True),
        sc.IntOp("add", x(4), x(4), lanes),
        sc.BranchCmp("lt", x(4), x(3), "loop"),
    )
    b.label("tail")
    b.emit(sc.Li(x(5), n), sc.BranchCmp("ge", x(4), x(5), "done"))
    b.label("tail_loop")
    b.emit(
        sc.Load(f(1), x(8), 0, etype=F32),
        sc.Load(f(2), x(9), 0, etype=F32),
        sc.FMac(f(2), f(1), f(0)),
        sc.Store(f(2), x(9), 0, etype=F32),
        sc.IntOp("add", x(8), x(8), 4),
        sc.IntOp("add", x(9), x(9), 4),
        sc.IntOp("add", x(4), x(4), 1),
        sc.BranchCmp("lt", x(4), x(5), "tail_loop"),
    )
    b.label("done")
    b.emit(sc.Halt())
    return b.build()


@pytest.mark.parametrize("n", [16, 33, 64, 5, 1])
class TestSaxpyAllIsas:
    def _run(self, build, n):
        xs, ys, a = make_workload(n)
        mem = Memory(1 << 20)
        x_addr = mem.alloc_array(xs)
        y_addr = mem.alloc_array(ys)
        program = build(x_addr, y_addr, n, a)
        sim = FunctionalSimulator(program, memory=mem)
        summary = sim.run()
        result = mem.ndarray(y_addr, (n,), np.float32)
        np.testing.assert_allclose(result, a * xs + ys, rtol=1e-6)
        return summary

    def test_uve(self, n):
        self._run(build_uve_saxpy, n)

    def test_sve(self, n):
        self._run(build_sve_saxpy, n)

    def test_neon(self, n):
        self._run(build_neon_saxpy, n)


class TestInstructionCounts:
    """The paper's headline code-reduction effect must be visible."""

    def _committed(self, build, n=256):
        xs, ys, a = make_workload(n)
        mem = Memory(1 << 20)
        x_addr = mem.alloc_array(xs)
        y_addr = mem.alloc_array(ys)
        sim = FunctionalSimulator(build(x_addr, y_addr, n, a), memory=mem)
        return sim.run().committed

    def test_uve_executes_far_fewer_instructions(self):
        uve_count = self._committed(build_uve_saxpy)
        sve_count = self._committed(build_sve_saxpy)
        neon_count = self._committed(build_neon_saxpy)
        assert uve_count < 0.5 * sve_count
        assert uve_count < 0.15 * neon_count
        assert sve_count < neon_count

    def test_uve_loop_is_three_instructions_per_vector(self):
        n = 256
        lanes = 16  # 512-bit f32
        count = self._committed(build_uve_saxpy, n)
        # preamble (6 incl. halt) + 3 per vector iteration
        assert count == 6 + 3 * (n // lanes)


class TestUveStreamTrace:
    def test_stream_chunks_recorded(self):
        n = 40
        xs, ys, a = make_workload(n)
        mem = Memory(1 << 20)
        x_addr = mem.alloc_array(xs)
        y_addr = mem.alloc_array(ys)
        sim = FunctionalSimulator(build_uve_saxpy(x_addr, y_addr, n, a), memory=mem)
        summary = sim.run()
        assert len(summary.streams) == 3
        loads = [s for s in summary.streams.values() if s.is_load]
        stores = [s for s in summary.streams.values() if not s.is_load]
        assert len(loads) == 2 and len(stores) == 1
        for info in summary.streams.values():
            assert info.total_elements() == n
            # 40 f32 at 16 lanes -> chunks of 16, 16, 8
            assert [len(c) for c in info.chunks] == [16, 16, 8]
