"""Unit tests for MachineState: stream control, vector length,
predication, the scalar-stream interface, and error conditions."""
import numpy as np
import pytest

from repro.common.types import ElementType
from repro.errors import IsaError, StreamError
from repro.isa import ProgramBuilder, f, p, u, x
from repro.isa import scalar_ops as sc
from repro.isa import uve_ops as uve
from repro.isa.registers import P0
from repro.isa.vector import VecValue, from_list
from repro.memory.backing import Memory
from repro.sim.functional import FunctionalSimulator, MachineState
from repro.streams.pattern import Direction, MemLevel

F32 = ElementType.F32


def state_with_array(values, etype=F32):
    mem = Memory(1 << 20)
    addr = mem.alloc_array(np.asarray(values, dtype=etype.dtype))
    state = MachineState(memory=mem)
    return state, addr


def configure_load(state, index, addr, size, etype=F32, stride=1):
    state.stream_begin(index, Direction.LOAD, etype, MemLevel.L2)
    state.stream_dim(index, addr // etype.width, size, stride)
    state.stream_finish(index)


class TestVectorLength:
    def test_default_lanes(self):
        state = MachineState()
        assert state.lanes(F32) == 16
        assert state.lanes(ElementType.F64) == 8

    def test_setvl_caps_request(self):
        state = MachineState()
        assert state.set_vl(100, F32) == 16
        assert state.set_vl(5, F32) == 5
        assert state.lanes(F32) == 5

    def test_setvl_zero_resets(self):
        state = MachineState()
        state.set_vl(4, F32)
        assert state.set_vl(0, F32) == 16
        assert state.lanes(F32) == 16

    def test_narrow_machine(self):
        state = MachineState(vector_bits=128)
        assert state.lanes(F32) == 4


class TestPredicates:
    def test_p0_hardwired_true(self):
        state = MachineState()
        assert state.read_pred(P0, 16).all()

    def test_p0_write_rejected(self):
        state = MachineState()
        with pytest.raises(IsaError):
            state.write_pred(P0, np.zeros(16, dtype=bool))

    def test_write_read_roundtrip(self):
        state = MachineState()
        mask = np.array([True, False] * 8)
        state.write_pred(p(3), mask)
        np.testing.assert_array_equal(state.read_pred(p(3), 16), mask)

    def test_shorter_read_truncates(self):
        state = MachineState()
        state.write_pred(p(3), np.ones(16, dtype=bool))
        assert len(state.read_pred(p(3), 8)) == 8


class TestStreamControl:
    def test_suspend_blocks_consumption(self):
        state, addr = state_with_array(np.arange(64))
        configure_load(state, 0, addr, 64)
        state.stream_control(0, "suspend")
        with pytest.raises(StreamError, match="suspended"):
            state.stream_read_scalar(0)

    def test_suspended_register_reads_as_plain_register(self):
        state, addr = state_with_array(np.arange(64, dtype=np.float32))
        configure_load(state, 0, addr, 64)
        value = state.read_operand(u(0), F32)  # consumes one chunk
        state.stream_control(0, "suspend")
        again = state.read_operand(u(0), F32)  # plain register read
        np.testing.assert_array_equal(value.data, again.data)

    def test_resume_restores_consumption(self):
        state, addr = state_with_array(np.arange(64, dtype=np.float32))
        configure_load(state, 0, addr, 64)
        state.stream_control(0, "suspend")
        state.stream_control(0, "resume")
        value = state.read_operand(u(0), F32)
        assert value.data[0] == 0.0

    def test_stop_unbinds(self):
        state, addr = state_with_array(np.arange(64, dtype=np.float32))
        configure_load(state, 0, addr, 64)
        state.stream_control(0, "stop")
        assert not state.is_stream(0)

    def test_control_without_stream_raises(self):
        state = MachineState()
        with pytest.raises(StreamError):
            state.stream_control(5, "suspend")


class TestStreamErrors:
    def test_reading_output_stream_rejected(self):
        state, addr = state_with_array(np.zeros(16, dtype=np.float32))
        state.stream_begin(2, Direction.STORE, F32, MemLevel.L2)
        state.stream_dim(2, addr // 4, 16, 1)
        state.stream_finish(2)
        with pytest.raises(StreamError, match="read"):
            state.read_operand(u(2), F32)

    def test_writing_input_stream_rejected(self):
        state, addr = state_with_array(np.zeros(16, dtype=np.float32))
        configure_load(state, 0, addr, 16)
        with pytest.raises(StreamError, match="written"):
            state.write_operand(u(0), from_list([1.0], F32, 16), F32)

    def test_overconsumption_rejected(self):
        state, addr = state_with_array(np.arange(16, dtype=np.float32))
        configure_load(state, 0, addr, 16)
        state.read_operand(u(0), F32)  # consumes all 16
        with pytest.raises(StreamError, match="finished"):
            state.read_operand(u(0), F32)

    def test_finish_without_begin_rejected(self):
        state = MachineState()
        with pytest.raises(StreamError, match="pending"):
            state.stream_finish(4)

    def test_modifier_without_outer_dim_rejected(self):
        from repro.streams.descriptor import Param, StaticBehavior
        state, addr = state_with_array(np.zeros(4, dtype=np.float32))
        state.stream_begin(0, Direction.LOAD, F32, MemLevel.L2)
        state.stream_dim(0, 0, 4, 1)
        with pytest.raises(StreamError, match="bind"):
            state.stream_static_mod(0, Param.SIZE, StaticBehavior.ADD, 1, 4)


class TestScalarStreamInterface:
    def test_scalar_reads_advance_elementwise(self):
        state, addr = state_with_array(np.arange(5, dtype=np.float32))
        configure_load(state, 0, addr, 5)
        got = [state.stream_read_scalar(0) for _ in range(5)]
        assert got == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert state.stream_ended(0)

    def test_scalar_writes_produce_elementwise(self):
        mem = Memory(1 << 20)
        addr = mem.alloc_array(np.zeros(4, dtype=np.float32))
        state = MachineState(memory=mem)
        state.stream_begin(1, Direction.STORE, F32, MemLevel.L2)
        state.stream_dim(1, addr // 4, 4, 1)
        state.stream_finish(1)
        for v in (9.0, 8.0, 7.0, 6.0):
            state.stream_write_scalar(1, v)
        np.testing.assert_array_equal(
            mem.ndarray(addr, (4,), np.float32), [9.0, 8.0, 7.0, 6.0]
        )


class TestReconfiguration:
    def test_register_rebinds_to_new_stream(self):
        state, addr = state_with_array(np.arange(32, dtype=np.float32))
        configure_load(state, 0, addr, 16)
        state.read_operand(u(0), F32)
        # Re-configure u0 over the second half.
        configure_load(state, 0, addr + 64, 16)
        value = state.read_operand(u(0), F32)
        assert value.data[0] == 16.0

    def test_uids_monotonic(self):
        state, addr = state_with_array(np.arange(32, dtype=np.float32))
        configure_load(state, 0, addr, 16)
        configure_load(state, 1, addr, 16)
        uids = sorted(state.stream_infos)
        assert uids == [0, 1]


class TestSuspendResumeProgram:
    def test_suspend_resume_in_program(self):
        """ss.suspend frees the register for scratch use; ss.resume
        restores stream consumption where it left off."""
        n = 32
        data = np.arange(n, dtype=np.float32)
        mem = Memory(1 << 20)
        src = mem.alloc_array(data)
        dst = mem.alloc_array(np.zeros(n, dtype=np.float32))
        b = ProgramBuilder("suspend-resume")
        b.emit(
            uve.SsConfig1D(u(0), Direction.LOAD, src // 4, n, 1, etype=F32),
            uve.SsConfig1D(u(1), Direction.STORE, dst // 4, n, 1, etype=F32),
            uve.SoMove(u(1), u(0), etype=F32),  # first chunk
            uve.SsCtl("suspend", u(0)),
            uve.SoDup(u(0), 99.0, etype=F32),  # scratch use while suspended
            uve.SsCtl("resume", u(0)),
            uve.SoMove(u(1), u(0), etype=F32),  # second chunk continues
            sc.Halt(),
        )
        FunctionalSimulator(b.build(), memory=mem).run()
        np.testing.assert_array_equal(mem.ndarray(dst, (n,), np.float32), data)
