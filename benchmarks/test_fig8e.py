"""Benchmark: regenerate Fig 8.E loop unrolling (paper evaluation)."""
from repro.harness import fig8

from conftest import run_figure


def test_fig8e(benchmark, runner):
    result = run_figure(benchmark, runner, fig8.unrolling)
    assert result.rows, "experiment produced no rows"
