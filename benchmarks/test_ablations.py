"""Ablation benchmarks for design choices DESIGN.md calls out:

* stream scheduler policy (FIFO-occupancy vs round-robin, §IV-B);
* number of Stream Processing Modules (paper: 2 vs 8 differ by <0.1%);
* baseline prefetchers on/off (UVE's advantage must persist either way).
"""
from dataclasses import replace

from repro.cpu.config import PrefetcherConfig

from conftest import run_figure
from repro.harness.report import ExperimentResult


def _run_with(runner, kernel, isa, mutate):
    cfg = mutate(runner.config_for(isa))
    return runner.run(kernel, isa, cfg)


def scheduler_policy(runner) -> ExperimentResult:
    rows = []
    for kernel in ("stream", "jacobi-2d", "gemm"):
        occ = _run_with(
            runner, kernel, "uve",
            lambda c: c.with_(engine=replace(c.engine,
                                             scheduler_policy="fifo-occupancy")),
        )
        rr = _run_with(
            runner, kernel, "uve",
            lambda c: c.with_(engine=replace(c.engine,
                                             scheduler_policy="round-robin")),
        )
        rows.append((kernel, int(occ.cycles), int(rr.cycles),
                     f"{rr.cycles / occ.cycles:.3f}x"))
    return ExperimentResult(
        "ablation-scheduler",
        "Stream scheduler: FIFO-occupancy priority vs round-robin",
        ["benchmark", "fifo-occupancy", "round-robin", "rr/occ"],
        rows,
    )


def processing_modules(runner) -> ExperimentResult:
    rows = []
    for kernel in ("gemm", "jacobi-2d", "stream"):
        cycles = []
        for modules in (2, 4, 8):
            record = _run_with(
                runner, kernel, "uve",
                lambda c, m=modules: c.with_(
                    engine=replace(c.engine, processing_modules=m)
                ),
            )
            cycles.append(record.cycles)
        rows.append((kernel,) + tuple(int(c) for c in cycles)
                    + (f"{cycles[0] / cycles[-1]:.3f}x",))
    return ExperimentResult(
        "ablation-spm",
        "Stream Processing Modules 2 vs 8 (paper: <0.1% difference)",
        ["benchmark", "2 modules", "4 modules", "8 modules", "2/8"],
        rows,
    )


def baseline_prefetchers(runner) -> ExperimentResult:
    rows = []
    for kernel in ("memcpy", "saxpy", "jacobi-2d"):
        uve = runner.run(kernel, "uve")
        sve_on = runner.run(kernel, "sve")
        sve_off = _run_with(
            runner, kernel, "sve",
            lambda c: c.with_(prefetch=PrefetcherConfig(
                l1_stride_enabled=False, l2_ampm_enabled=False)),
        )
        rows.append((
            kernel,
            f"{sve_on.cycles / uve.cycles:.2f}x",
            f"{sve_off.cycles / uve.cycles:.2f}x",
        ))
    return ExperimentResult(
        "ablation-prefetch",
        "UVE speed-up vs SVE with and without baseline prefetchers",
        ["benchmark", "prefetchers on", "prefetchers off"],
        rows,
        notes=["UVE needs no prefetchers; its advantage grows when the "
               "baseline loses them"],
    )


def mac_forwarding(runner) -> ExperimentResult:
    """Cortex-A76-style FMLA accumulator forwarding on/off: chains of
    multiply-accumulates (gemm, haccmk) speed up on both cores."""
    rows = []
    for kernel in ("gemm", "haccmk"):
        for isa in ("uve", "sve"):
            plain = runner.run(kernel, isa)
            cfg = runner.config_for(isa)
            cfg = cfg.with_(core=replace(cfg.core, mac_forwarding=True))
            fwd = runner.run(kernel, isa, cfg)
            rows.append(
                (kernel, isa, int(plain.cycles), int(fwd.cycles),
                 f"{plain.cycles / fwd.cycles:.3f}x")
            )
    return ExperimentResult(
        "ablation-mac-forwarding",
        "MAC accumulator forwarding off vs on",
        ["benchmark", "isa", "off", "on", "speed-up"],
        rows,
    )


def test_ablation_mac_forwarding(benchmark, runner):
    result = run_figure(benchmark, runner, mac_forwarding)
    assert result.rows
    for row in result.rows:
        assert float(row[4].rstrip("x")) >= 0.99  # never slower


def test_ablation_scheduler(benchmark, runner):
    result = run_figure(benchmark, runner, scheduler_policy)
    assert result.rows


def test_ablation_spm(benchmark, runner):
    result = run_figure(benchmark, runner, processing_modules)
    assert result.rows


def test_ablation_prefetch(benchmark, runner):
    result = run_figure(benchmark, runner, baseline_prefetchers)
    assert result.rows
    # The advantage persists without baseline prefetchers.
    for row in result.rows:
        assert float(row[2].rstrip("x")) >= float(row[1].rstrip("x")) - 0.5
