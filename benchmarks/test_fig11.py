"""Benchmark: regenerate Fig 11 stream cache level (paper evaluation)."""
from repro.harness import sensitivity

from conftest import run_figure


def test_fig11(benchmark, runner):
    result = run_figure(benchmark, runner, sensitivity.stream_cache_level)
    assert result.rows, "experiment produced no rows"
