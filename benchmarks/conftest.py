"""Shared fixtures for the benchmark harness.

Each ``benchmarks/test_*.py`` regenerates one table/figure of the paper
through pytest-benchmark (single-round pedantic mode: a figure is a
deterministic simulation campaign, not a microbenchmark).

Set ``REPRO_BENCH_SCALE`` to change the workload scale (default 0.5 for
turnaround; 1.0 reproduces the EXPERIMENTS.md numbers).
"""
import os

import pytest

from repro.harness import Runner


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def runner() -> Runner:
    return Runner(scale=bench_scale(), seed=0)


def run_figure(benchmark, runner, experiment_fn):
    """Run one experiment exactly once under pytest-benchmark and print
    its table."""
    result = benchmark.pedantic(
        experiment_fn, args=(runner,), rounds=1, iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.render())
    return result
