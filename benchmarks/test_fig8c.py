"""Benchmark: regenerate Fig 8.C rename blocks (paper evaluation)."""
from repro.harness import fig8

from conftest import run_figure


def test_fig8c(benchmark, runner):
    result = run_figure(benchmark, runner, fig8.rename_blocks)
    assert result.rows, "experiment produced no rows"
