"""Benchmark: regenerate Table I configuration (paper evaluation)."""
from repro.harness import overheads

from conftest import run_figure


def test_table1(benchmark, runner):
    result = run_figure(benchmark, runner, overheads.table1)
    assert result.rows, "experiment produced no rows"
