"""Benchmark: regenerate Fig 9 vector-register sensitivity (paper evaluation)."""
from repro.harness import sensitivity

from conftest import run_figure


def test_fig9(benchmark, runner):
    result = run_figure(benchmark, runner, sensitivity.vector_registers)
    assert result.rows, "experiment produced no rows"
