"""Simulator-performance micro-benchmark (wall clock of the timing loop).

Unlike the figure benchmarks, this measures the *simulator itself*: how
fast ``Pipeline.run`` replays a materialised trace with the event-horizon
fast-forward on vs off.  It is the pytest face of
``repro.harness.bench`` (which CI runs directly to produce the
``BENCH_sim.json`` artifact).
"""
import json
import os

import pytest

from conftest import bench_scale
from repro.harness import bench


@pytest.mark.parametrize("kernel,isa", bench.DEFAULT_CASES)
def test_timing_loop_speedup(benchmark, kernel, isa):
    scale = bench_scale()
    mat = bench.materialize(kernel, isa, scale=scale)

    off_s, off_pipe = bench.time_run(mat, fast_forward=False)
    on_s, on_pipe = benchmark.pedantic(
        bench.time_run, args=(mat, True), rounds=1, iterations=1,
        warmup_rounds=0,
    )

    # Equivalence gate: fast-forward must be invisible in the stats.
    assert on_pipe.stats.as_dict() == off_pipe.stats.as_dict()
    assert on_pipe.ff_skipped_cycles > 0
    print(
        f"\n{kernel}/{isa} @ scale {scale}: off {off_s:.3f}s, "
        f"on {on_s:.3f}s ({off_s / on_s:.2f}x), skipped "
        f"{on_pipe.ff_skipped_cycles}/{int(on_pipe.stats.cycles)} cycles"
    )


def test_bench_module_writes_json(tmp_path):
    """``python -m repro.harness.bench --json`` output shape (what CI
    uploads as the BENCH_sim.json artifact)."""
    out = tmp_path / "BENCH_sim.json"
    rc = bench.main(
        ["--json", str(out), "--scale", "0.1", "--repeats", "1",
         "--cases", "memcpy/uve"]
    )
    assert rc == 0
    data = json.loads(out.read_text())
    (run,) = data["runs"]
    assert run["stats_identical"] is True
    # Wall-clock speedup is asserted at full scale (BENCH_sim.json); at
    # this smoke scale only check the fast path engaged and was recorded.
    assert run["skipped_cycles"] > 0
    assert run["speedup"] > 0
    assert data["max_speedup"] == run["speedup"]
    # Without --bless the trajectory stays as it was (empty here).
    assert data["trajectory"] == []


def test_bench_bless_appends_trajectory(tmp_path):
    """--bless appends one append-only trajectory entry per run and
    carries prior entries forward across invocations."""
    out = tmp_path / "BENCH_sim.json"
    args = ["--json", str(out), "--scale", "0.1", "--repeats", "1",
            "--cases", "memcpy/uve", "--bless"]
    assert bench.main(args) == 0
    first = json.loads(out.read_text())["trajectory"]
    assert len(first) == 1
    assert first[0]["scale"] == 0.1
    assert "memcpy/uve" in first[0]["cycles_per_sec_on"]
    assert "memcpy/uve" in first[0]["cycles"]
    assert first[0]["rev"]
    assert bench.main(args) == 0
    second = json.loads(out.read_text())["trajectory"]
    assert len(second) == 2
    assert second[0] == first[0]  # append-only: old entries untouched


class TestGate:
    """Unit tests of the trajectory regression gate."""

    def _results(self, cps, cycles=1000.0):
        return {
            "scale": 1.0,
            "runs": [
                {"kernel": "stream", "isa": "uve", "cycles": cycles,
                 "cycles_per_sec_on": cps},
            ],
        }

    def _reference(self, cps, cycles=1000.0):
        return {
            "rev": "abc1234",
            "scale": 1.0,
            "cycles": {"stream/uve": cycles},
            "cycles_per_sec_on": {"stream/uve": cps},
        }

    def test_regression_beyond_tolerance_fails(self):
        failures, _ = bench.check_gate(
            self._results(cps=80_000.0), self._reference(cps=100_000.0),
            tolerance=0.10,
        )
        assert failures and "stream/uve" in failures[0]

    def test_regression_within_tolerance_passes(self):
        failures, _ = bench.check_gate(
            self._results(cps=95_000.0), self._reference(cps=100_000.0),
            tolerance=0.10,
        )
        assert failures == []

    def test_improvement_passes(self):
        failures, _ = bench.check_gate(
            self._results(cps=300_000.0), self._reference(cps=100_000.0),
        )
        assert failures == []

    def test_cycle_count_drift_warns_not_fails(self):
        # A timing-model change invalidates the wall-clock comparison;
        # the gate must surface it without failing the build (model
        # output is guarded by tier-1 and the differential fuzzer).
        failures, warnings = bench.check_gate(
            self._results(cps=10_000.0, cycles=2000.0),
            self._reference(cps=100_000.0, cycles=1000.0),
        )
        assert failures == []
        assert any("cycles changed" in w for w in warnings)

    def test_missing_reference_passes_with_warning(self):
        failures, warnings = bench.check_gate(
            self._results(cps=10_000.0), None
        )
        assert failures == []
        assert warnings

    def test_gate_cli_fails_on_blessed_regression(self, tmp_path):
        """End-to-end: bless an impossible reference, then --gate exits 2
        and refuses to bless the regressed run."""
        out = tmp_path / "BENCH_sim.json"
        doc = {
            "scale": 0.1,
            "runs": [],
            "trajectory": [
                {
                    "rev": "ffffff0",
                    "scale": 0.1,
                    "cycles": {},  # unknown cycles: no drift downgrade
                    "cycles_per_sec_on": {"memcpy/uve": 1e15},
                }
            ],
        }
        out.write_text(json.dumps(doc))
        rc = bench.main(
            ["--json", str(out), "--scale", "0.1", "--repeats", "1",
             "--cases", "memcpy/uve", "--gate", "--bless"]
        )
        assert rc == 2
        data = json.loads(out.read_text())
        assert len(data["trajectory"]) == 1  # failed gate blocks bless
