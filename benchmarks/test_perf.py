"""Simulator-performance micro-benchmark (wall clock of the timing loop).

Unlike the figure benchmarks, this measures the *simulator itself*: how
fast ``Pipeline.run`` replays a materialised trace with the event-horizon
fast-forward on vs off.  It is the pytest face of
``repro.harness.bench`` (which CI runs directly to produce the
``BENCH_sim.json`` artifact).
"""
import json
import os

import pytest

from conftest import bench_scale
from repro.harness import bench


@pytest.mark.parametrize("kernel,isa", bench.DEFAULT_CASES)
def test_timing_loop_speedup(benchmark, kernel, isa):
    scale = bench_scale()
    mat = bench.materialize(kernel, isa, scale=scale)

    off_s, off_pipe = bench.time_run(mat, fast_forward=False)
    on_s, on_pipe = benchmark.pedantic(
        bench.time_run, args=(mat, True), rounds=1, iterations=1,
        warmup_rounds=0,
    )

    # Equivalence gate: fast-forward must be invisible in the stats.
    assert on_pipe.stats.as_dict() == off_pipe.stats.as_dict()
    assert on_pipe.ff_skipped_cycles > 0
    print(
        f"\n{kernel}/{isa} @ scale {scale}: off {off_s:.3f}s, "
        f"on {on_s:.3f}s ({off_s / on_s:.2f}x), skipped "
        f"{on_pipe.ff_skipped_cycles}/{int(on_pipe.stats.cycles)} cycles"
    )


def test_bench_module_writes_json(tmp_path):
    """``python -m repro.harness.bench --json`` output shape (what CI
    uploads as the BENCH_sim.json artifact)."""
    out = tmp_path / "BENCH_sim.json"
    rc = bench.main(
        ["--json", str(out), "--scale", "0.1", "--repeats", "1",
         "--cases", "memcpy/uve"]
    )
    assert rc == 0
    data = json.loads(out.read_text())
    (run,) = data["runs"]
    assert run["stats_identical"] is True
    # Wall-clock speedup is asserted at full scale (BENCH_sim.json); at
    # this smoke scale only check the fast path engaged and was recorded.
    assert run["skipped_cycles"] > 0
    assert run["speedup"] > 0
    assert data["max_speedup"] == run["speedup"]
