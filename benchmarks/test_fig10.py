"""Benchmark: regenerate Fig 10 FIFO depth sensitivity (paper evaluation)."""
from repro.harness import sensitivity

from conftest import run_figure


def test_fig10(benchmark, runner):
    result = run_figure(benchmark, runner, sensitivity.fifo_depth)
    assert result.rows, "experiment produced no rows"
