"""Benchmark: regenerate Fig 8.A instruction reduction (paper evaluation)."""
from repro.harness import fig8

from conftest import run_figure


def test_fig8a(benchmark, runner):
    result = run_figure(benchmark, runner, fig8.instruction_reduction)
    assert result.rows, "experiment produced no rows"
