"""Benchmark: regenerate Fig 8 benchmark table (paper evaluation)."""
from repro.harness import fig8

from conftest import run_figure


def test_fig8_table(benchmark, runner):
    result = run_figure(benchmark, runner, fig8.benchmark_table)
    assert result.rows, "experiment produced no rows"
