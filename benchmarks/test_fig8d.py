"""Benchmark: regenerate Fig 8.D bus utilization (paper evaluation)."""
from repro.harness import fig8

from conftest import run_figure


def test_fig8d(benchmark, runner):
    result = run_figure(benchmark, runner, fig8.bus_utilization)
    assert result.rows, "experiment produced no rows"
