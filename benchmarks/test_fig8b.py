"""Benchmark: regenerate Fig 8.B speedup (paper evaluation)."""
from repro.harness import fig8

from conftest import run_figure


def test_fig8b(benchmark, runner):
    result = run_figure(benchmark, runner, fig8.speedup)
    assert result.rows, "experiment produced no rows"
