"""Benchmark: regenerate Streaming Engine storage overheads (paper evaluation)."""
from repro.harness import overheads

from conftest import run_figure


def test_overheads(benchmark, runner):
    result = run_figure(benchmark, runner, overheads.storage_overheads)
    assert result.rows, "experiment produced no rows"
