"""Benchmarks: the extension experiments beyond the paper's figures."""
from repro.harness import extensions

from conftest import run_figure


def test_ext_rvv(benchmark, runner):
    result = run_figure(benchmark, runner, extensions.rvv_comparison)
    assert result.rows
    # UVE never loses to RVV.
    for row in result.rows:
        assert float(str(row[2]).rstrip("x")) >= 0.95


def test_ext_vl(benchmark, runner):
    result = run_figure(benchmark, runner, extensions.vector_length_sweep)
    assert result.rows
    for row in result.rows:
        assert str(row[4]) == "1.00x"  # 512-bit column is the baseline


def test_ext_shared_fifo(benchmark, runner):
    result = run_figure(benchmark, runner, extensions.shared_fifo)
    assert result.rows
    for row in result.rows:
        assert float(str(row[3]).rstrip("x")) > 0.9
